"""CPU timing model: PSV-ICD on 16 cores and single-core sequential ICD.

The comparison side of Table 1.  PSV-ICD's per-element cost reflects an SVB
that is linear, prefetchable and resident in the core's private L2 (§2.2);
sequential ICD pays a fresh cache line per short sinusoidal run.  Both are
throughput models anchored to the paper's published per-equit times; the
*structural* effects — SV side vs the 256 KB L2, per-SV overheads, core
count, lock serialisation — shape how the cost moves under parameter
changes.
"""

from __future__ import annotations

import numpy as np

from repro.core.psv_icd import PSVExecutionTrace
from repro.ct.geometry import ParallelBeamGeometry
from repro.gpusim.calibration import DEFAULT_CPU_CALIBRATION, CPUCalibration
from repro.gpusim.device import XEON_E5_2670_X2, CPUSpec
from repro.gpusim.timing import analytic_svb_stats
from repro.layout.chunks import view_run_lengths
from repro.utils import check_positive

__all__ = ["CPUTimingModel"]


class CPUTimingModel:
    """Performance model of the CPU baselines on a given geometry."""

    def __init__(
        self,
        geometry: ParallelBeamGeometry,
        *,
        cpu: CPUSpec = XEON_E5_2670_X2,
        calibration: CPUCalibration = DEFAULT_CPU_CALIBRATION,
    ) -> None:
        self.geometry = geometry
        self.cpu = cpu
        self.cal = calibration
        self._raw_elements = float(view_run_lengths(geometry).sum())

    # ------------------------------------------------------------------
    def _svb_working_bytes(self, sv_side: int) -> float:
        """Per-core SVB working set: error + weight buffers + the delta copy."""
        svb = analytic_svb_stats(self.geometry, sv_side)
        return 3.0 * svb.rect_bytes(4)

    def psv_cycles_per_update(self, sv_side: int) -> float:
        """Cycles one voxel update costs inside PSV-ICD's inner loop.

        When the SVB working set overflows the private L2, the linear-
        access advantage fades and per-element cost grows proportionally to
        the overflow (the right wall of the CPU SV-side trade-off).
        """
        overflow = max(self._svb_working_bytes(sv_side) / self.cpu.l2_bytes - 1.0, 0.0)
        per_element = self.cal.psv_cycles_per_element * (
            1.0 + self.cal.l2_overflow_penalty * overflow
        )
        return self._raw_elements * per_element + self.cal.per_voxel_overhead_cycles

    def psv_equit_time(
        self,
        sv_side: int,
        *,
        n_cores: int | None = None,
        zero_skip_fraction: float = 0.0,
    ) -> float:
        """Modeled seconds per equit of PSV-ICD (anchor: 0.41 s, Table 1)."""
        check_positive("sv_side", sv_side)
        cores = n_cores if n_cores is not None else self.cpu.n_cores
        check_positive("n_cores", cores)
        n_voxels = self.geometry.n_voxels
        update_cycles = n_voxels * self.psv_cycles_per_update(sv_side)
        visit_cycles = (
            n_voxels * zero_skip_fraction / max(1.0 - zero_skip_fraction, 1e-9)
        ) * self.cal.per_voxel_overhead_cycles
        # Per-SV fixed costs: SVB create, delta, locked merge.
        n_svs_per_equit = n_voxels / sv_side**2
        sv_overhead = n_svs_per_equit * self.cal.per_sv_overhead_s
        lock_serial = n_svs_per_equit * self.cpu.lock_overhead_s  # serialised
        parallel = ((update_cycles + visit_cycles) / self.cpu.clock_hz + sv_overhead) / cores
        return (parallel * self.cal.imbalance_factor + lock_serial) * self.cal.time_scale

    def sequential_equit_time(self) -> float:
        """Modeled seconds per equit of the traditional single-core ICD."""
        cycles = self._raw_elements * self.cal.seq_cycles_per_element + (
            self.cal.per_voxel_overhead_cycles
        )
        return self.geometry.n_voxels * cycles / self.cpu.clock_hz * self.cal.time_scale

    def run_time_from_trace(self, trace: PSVExecutionTrace) -> float:
        """Modeled wall time of a real (scaled) PSV-ICD run.

        Each recorded wave ran its SVs concurrently on the cores; the wave
        time is the makespan of its per-SV costs.
        """
        per_update = self.psv_cycles_per_update(trace.sv_side) / self.cpu.clock_hz
        total = 0.0
        for wave in trace.waves:
            sv_times = np.array(
                [
                    s.updates * per_update
                    + s.skipped * self.cal.per_voxel_overhead_cycles / self.cpu.clock_hz
                    + self.cal.per_sv_overhead_s
                    for s in wave.sv_stats
                ]
            )
            # SVs of one wave run concurrently (one per core); the merge
            # lock serialises the final adds.
            total += float(sv_times.max()) if sv_times.size else 0.0
            total += len(wave.sv_stats) * self.cpu.lock_overhead_s
        return total * self.cal.time_scale

    def reconstruction_time(
        self,
        equits: float,
        sv_side: int,
        *,
        n_cores: int | None = None,
        zero_skip_fraction: float = 0.0,
    ) -> float:
        """Total modeled PSV-ICD time = measured equits x modeled equit time."""
        if equits < 0:
            raise ValueError("equits must be >= 0")
        return equits * self.psv_equit_time(
            sv_side, n_cores=n_cores, zero_skip_fraction=zero_skip_fraction
        )

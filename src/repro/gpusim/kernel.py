"""Kernel configuration and cost-breakdown records.

:class:`GPUKernelConfig` collects the *code-generation* choices of §4 — the
data layout, the A-matrix representation and path, the double-read trick,
and the register/shared-memory placement — i.e. everything Table 2, Table 3
and Fig. 6 toggle.  The algorithmic knobs (SV side, batch size, ...) live in
:class:`repro.core.gpu_icd.GPUICDParams`; hardware constants live in
:class:`repro.gpusim.device.GPUDeviceSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUKernelConfig", "KernelCost"]


@dataclass(frozen=True)
class GPUKernelConfig:
    """Compile-time / implementation choices for the MBIR GPU kernel."""

    #: §4.1 — transposed + zero-padded chunked layout vs the naive
    #: sensor-major layout (the Fig. 6 baseline).
    transformed_layout: bool = True
    #: §4.3.1 — A-matrix entry bytes: 1 (quantised unsigned char) or 4 (float).
    a_matrix_bytes: int = 1
    #: §4.3.1 — read the A-matrix through the unified L1/texture cache.
    a_via_texture: bool = True
    #: §4.3.2 — read the SVB as double (8 bytes) to reach full L2 bandwidth.
    sinogram_as_double: bool = True
    #: §4.2 — spill thread-locals to shared memory (32 regs, 100 % occupancy)
    #: instead of the natural 44-register build.
    shared_spill: bool = True
    #: Registers per thread for the two builds.
    registers_spilled: int = 32
    registers_natural: int = 44
    #: Static shared memory per block (reduction staging), bytes per thread.
    shared_bytes_per_thread: int = 16
    #: Extra shared memory per thread used by the spilled variables.
    spill_bytes_per_thread: int = 24

    def __post_init__(self) -> None:
        if self.a_matrix_bytes not in (1, 4):
            raise ValueError(f"a_matrix_bytes must be 1 or 4, got {self.a_matrix_bytes}")

    @property
    def registers_per_thread(self) -> int:
        """Register count of the selected build."""
        return self.registers_spilled if self.shared_spill else self.registers_natural

    def shared_bytes_per_block(self, threads_per_block: int) -> int:
        """Shared-memory footprint of one block."""
        per_thread = self.shared_bytes_per_thread + (
            self.spill_bytes_per_thread if self.shared_spill else 0
        )
        return per_thread * threads_per_block

    def with_(self, **changes) -> "GPUKernelConfig":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class KernelCost:
    """Time breakdown of one kernel launch (seconds)."""

    total: float
    bottleneck: str  # which component bound the kernel
    times: dict[str, float]  # per-resource service times
    occupancy: float
    hiding_factor: float
    imbalance: float
    l2_hit_rate: float  # SVB reuse hit rate in L2
    tex_hit_rate: float
    #: Total traffic moved by the kernel (None for legacy callers); used by
    #: the achieved-bandwidth report that mirrors §5.3's accounting.
    traffic: object | None = None

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("kernel time must be non-negative")

"""CUDA occupancy calculator (§4.2 of the paper).

Occupancy — "the ratio of coexisting GPU threads to the maximum number of
threads that can reside on the GPU" — determines how well memory latency is
hidden.  A threadblock's resident-block count per SMM is limited by four
resources; the binding minimum decides occupancy:

* threads:   ``max_threads_per_smm // threads_per_block``
* registers: register file split among blocks, with per-warp allocation
  granularity (Maxwell allocates registers in 256-register slices per warp)
* shared memory: ``shared_mem_per_smm // shared_per_block``
* the hardware block limit (32 on Maxwell)

This reproduces the paper's occupancy narrative: the MBIR kernel at 44
registers/thread is register-limited well below full residency; restricting
to 32 registers (by spilling thread-local variables into shared memory,
§4.2) reaches 100 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import GPUDeviceSpec
from repro.utils import check_positive

__all__ = ["OccupancyResult", "occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    blocks_per_smm: int
    threads_per_smm: int
    occupancy: float  # 0..1
    limiter: str  # which resource bound the block count

    @property
    def percent(self) -> float:
        """Occupancy as a percentage."""
        return 100.0 * self.occupancy


def occupancy(
    device: GPUDeviceSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_bytes_per_block: int = 0,
) -> OccupancyResult:
    """Compute achievable occupancy for a kernel configuration.

    Raises ``ValueError`` for configurations that cannot launch at all
    (block too large, more registers or shared memory than one block may
    use).
    """
    check_positive("threads_per_block", threads_per_block)
    check_positive("registers_per_thread", registers_per_thread)
    if shared_bytes_per_block < 0:
        raise ValueError("shared_bytes_per_block must be >= 0")
    if threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"threads_per_block {threads_per_block} exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if shared_bytes_per_block > device.shared_mem_per_block:
        raise ValueError(
            f"shared_bytes_per_block {shared_bytes_per_block} exceeds per-block limit "
            f"{device.shared_mem_per_block}"
        )

    warps_per_block = -(-threads_per_block // device.warp_size)  # ceil
    gran = device.register_alloc_granularity
    regs_per_warp = registers_per_thread * device.warp_size
    regs_per_warp = -(-regs_per_warp // gran) * gran  # round up to granularity
    if regs_per_warp * warps_per_block > device.registers_per_smm:
        raise ValueError(
            f"{registers_per_thread} registers x {threads_per_block} threads "
            f"exceeds the register file"
        )

    limits = {
        "threads": device.max_threads_per_smm // threads_per_block,
        "registers": (device.registers_per_smm // regs_per_warp) // warps_per_block,
        "blocks": device.max_blocks_per_smm,
    }
    if shared_bytes_per_block > 0:
        limits["shared_memory"] = device.shared_mem_per_smm // shared_bytes_per_block

    limiter = min(limits, key=limits.get)
    blocks = limits[limiter]
    threads = blocks * threads_per_block
    return OccupancyResult(
        blocks_per_smm=blocks,
        threads_per_smm=threads,
        occupancy=threads / device.max_threads_per_smm,
        limiter=limiter,
    )

"""Set-associative LRU cache model.

Used for trace-driven estimates of the unified L1/texture hit rate (Table 2
reports 41.78 % for float A-matrix data vs 60.36 % after quantising to
``unsigned char``) and for validating the analytic L2 working-set model the
timing code uses.  The simulator is deliberately simple — physical caches
have hashed set functions and sectored lines — but capacity/associativity
behaviour, which is all the MBIR analysis relies on, is faithful.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive

__all__ = ["SetAssociativeCache", "hit_rate_for_trace"]


class SetAssociativeCache:
    """An LRU set-associative cache over byte addresses.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_bytes:
        Line (block) size; addresses are cached at line granularity.
    ways:
        Associativity.  ``size_bytes`` must be divisible by
        ``line_bytes * ways``.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 32, ways: int = 8) -> None:
        check_positive("size_bytes", size_bytes)
        check_positive("line_bytes", line_bytes)
        check_positive("ways", ways)
        n_lines = size_bytes // line_bytes
        if n_lines * line_bytes != size_bytes:
            raise ValueError("size_bytes must be a multiple of line_bytes")
        self.n_sets = n_lines // ways
        if self.n_sets == 0 or self.n_sets * ways != n_lines:
            raise ValueError("size_bytes must be a multiple of line_bytes * ways")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        # tags[set, way]; -1 = invalid.  lru[set, way] = age counter (higher
        # = more recently used).
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self._lru = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        """Total accesses since the last stats reset."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction since the last stats reset (0 if no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def access(self, byte_address: int) -> bool:
        """Access one address; returns True on hit.  Misses fill via LRU."""
        line = byte_address // self.line_bytes
        s = line % self.n_sets
        tag = line // self.n_sets
        self._clock += 1
        tags = self._tags[s]
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            self._lru[s, hit_ways[0]] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        victim = int(np.argmin(self._lru[s]))
        self._tags[s, victim] = tag
        self._lru[s, victim] = self._clock
        return False

    def access_trace(self, byte_addresses: np.ndarray) -> float:
        """Access a whole trace; returns the hit rate over this trace."""
        hits_before = self.hits
        misses_before = self.misses
        for addr in np.asarray(byte_addresses, dtype=np.int64):
            self.access(int(addr))
        new = (self.hits - hits_before) + (self.misses - misses_before)
        return (self.hits - hits_before) / new if new else 0.0


def hit_rate_for_trace(
    byte_addresses: np.ndarray,
    *,
    size_bytes: int,
    line_bytes: int = 32,
    ways: int = 8,
) -> float:
    """One-shot cold-start hit rate of a trace on a fresh cache."""
    cache = SetAssociativeCache(size_bytes, line_bytes=line_bytes, ways=ways)
    return cache.access_trace(np.asarray(byte_addresses))

"""Memory-system bandwidth accounting.

The paper's performance story is a bandwidth story: "Summed up, the total
bandwidth achieved is 1802 GB/s, which is 5.36X that of the maximum device
memory bandwidth" (§5.3) — the cache hierarchy levels serve traffic *in
parallel*, so a kernel's memory time is the maximum (not the sum) of the
per-level service times.  This module defines the traffic ledger and the
achieved-bandwidth model (peak x access-efficiency x latency-hiding factor
from occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import GPUDeviceSpec

__all__ = ["TrafficVector", "latency_hiding_factor", "achieved_bandwidth", "memory_time"]


@dataclass
class TrafficVector:
    """Bytes moved at each level of the hierarchy (plus compute work).

    All values are totals for whatever unit of work the caller is costing
    (one voxel update, one kernel, one equit); vectors add.
    """

    dram_bytes: float = 0.0
    l2_bytes: float = 0.0
    tex_bytes: float = 0.0
    shared_bytes: float = 0.0
    flops: float = 0.0
    atomic_ops: float = 0.0

    def __add__(self, other: "TrafficVector") -> "TrafficVector":
        return TrafficVector(
            dram_bytes=self.dram_bytes + other.dram_bytes,
            l2_bytes=self.l2_bytes + other.l2_bytes,
            tex_bytes=self.tex_bytes + other.tex_bytes,
            shared_bytes=self.shared_bytes + other.shared_bytes,
            flops=self.flops + other.flops,
            atomic_ops=self.atomic_ops + other.atomic_ops,
        )

    def scaled(self, factor: float) -> "TrafficVector":
        """This vector multiplied by ``factor`` (e.g. per-voxel -> per-kernel)."""
        return TrafficVector(
            dram_bytes=self.dram_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
            tex_bytes=self.tex_bytes * factor,
            shared_bytes=self.shared_bytes * factor,
            flops=self.flops * factor,
            atomic_ops=self.atomic_ops * factor,
        )


def latency_hiding_factor(active_warps: float, max_warps: float, saturation_fraction: float) -> float:
    """How much of peak bandwidth the resident warp population can sustain.

    GPUs hide memory latency with thread-level parallelism; below a
    saturation point, achieved bandwidth grows roughly linearly with the
    number of resident warps (Little's law with fixed latency).  The model:

        factor = min(1, active_warps / (saturation_fraction * max_warps))

    ``saturation_fraction`` is a calibration constant (~0.5: half the
    maximum resident warps suffice to saturate the memory system).  This
    single mechanism produces the paper's two biggest effects — the 6.25x
    cost of disabling intra-SV parallelism (too few blocks to populate the
    device) and the benefit of spilling registers to shared memory (100 %
    occupancy, Table 3).
    """
    if max_warps <= 0 or saturation_fraction <= 0:
        raise ValueError("max_warps and saturation_fraction must be positive")
    if active_warps < 0:
        raise ValueError("active_warps must be >= 0")
    return min(1.0, active_warps / (saturation_fraction * max_warps))


def achieved_bandwidth(peak_bw: float, hiding_factor: float, access_efficiency: float = 1.0) -> float:
    """Effective bandwidth = peak x latency-hiding x access efficiency.

    ``access_efficiency`` carries access-width effects, e.g. the Titan X
    reaching only 50 % of L2 bandwidth with 4-byte loads but 100 % with
    8-byte loads (§4.3.2).
    """
    if peak_bw <= 0:
        raise ValueError("peak_bw must be positive")
    if not 0.0 <= access_efficiency <= 1.0:
        raise ValueError("access_efficiency must be in [0, 1]")
    if not 0.0 <= hiding_factor <= 1.0:
        raise ValueError("hiding_factor must be in [0, 1]")
    return peak_bw * hiding_factor * access_efficiency


def memory_time(
    traffic: TrafficVector,
    device: GPUDeviceSpec,
    *,
    hiding_factor: float,
    l2_access_efficiency: float,
) -> dict[str, float]:
    """Per-resource service times (seconds) for a traffic vector.

    Returns a dict with one entry per hierarchy level plus ``"compute"``;
    the kernel's memory/compute time is the max over these (levels overlap).
    Atomics are costed separately by :mod:`repro.gpusim.atomics`.
    """
    times = {
        "dram": traffic.dram_bytes / achieved_bandwidth(device.dram_peak_bw, hiding_factor),
        "l2": traffic.l2_bytes
        / achieved_bandwidth(device.l2_peak_bw, hiding_factor, l2_access_efficiency),
        "tex": traffic.tex_bytes / achieved_bandwidth(device.tex_peak_bw, hiding_factor),
        "shared": traffic.shared_bytes / achieved_bandwidth(device.shared_peak_bw, hiding_factor),
        "compute": traffic.flops / (device.peak_flops * max(hiding_factor, 1e-9)),
    }
    return times

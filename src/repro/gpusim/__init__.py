"""GPU performance-model substrate (Maxwell Titan X) and CPU baselines."""

from repro.gpusim.atomics import atomic_writeback_time, expected_conflict_degree
from repro.gpusim.cache import SetAssociativeCache, hit_rate_for_trace
from repro.gpusim.calibration import (
    DEFAULT_CPU_CALIBRATION,
    DEFAULT_GPU_CALIBRATION,
    CPUCalibration,
    GPUCalibration,
)
from repro.gpusim.cpu_model import CPUTimingModel
from repro.gpusim.device import TITAN_X, XEON_E5_2670_X2, CPUSpec, GPUDeviceSpec
from repro.gpusim.kernel import GPUKernelConfig, KernelCost
from repro.gpusim.memory import (
    TrafficVector,
    achieved_bandwidth,
    latency_hiding_factor,
    memory_time,
)
from repro.gpusim.occupancy import OccupancyResult, occupancy
from repro.gpusim.scheduler import (
    ScheduleResult,
    imbalance_factor,
    simulate_dynamic,
    simulate_static,
)
from repro.gpusim.timing import GPUTimingModel, SVBStats, analytic_svb_stats
from repro.gpusim.warp import coalescing_efficiency, transactions_for_warp, warp_traffic

__all__ = [
    "GPUDeviceSpec",
    "CPUSpec",
    "TITAN_X",
    "XEON_E5_2670_X2",
    "OccupancyResult",
    "occupancy",
    "transactions_for_warp",
    "warp_traffic",
    "coalescing_efficiency",
    "SetAssociativeCache",
    "hit_rate_for_trace",
    "ScheduleResult",
    "simulate_dynamic",
    "simulate_static",
    "imbalance_factor",
    "expected_conflict_degree",
    "atomic_writeback_time",
    "TrafficVector",
    "latency_hiding_factor",
    "achieved_bandwidth",
    "memory_time",
    "GPUKernelConfig",
    "KernelCost",
    "GPUCalibration",
    "CPUCalibration",
    "DEFAULT_GPU_CALIBRATION",
    "DEFAULT_CPU_CALIBRATION",
    "GPUTimingModel",
    "CPUTimingModel",
    "SVBStats",
    "analytic_svb_stats",
]

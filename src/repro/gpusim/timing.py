"""End-to-end GPU timing model for GPU-ICD.

Combines the substrate pieces — occupancy, layout statistics, working-set
L2 model, scheduling, atomics — into per-kernel, per-batch and per-equit
times for a given :class:`~repro.core.gpu_icd.GPUICDParams` /
:class:`~repro.gpusim.kernel.GPUKernelConfig` pair.

The model is evaluated on *geometry statistics* (per-view footprint runs,
band widths), so it can cost the paper's full 512^2 / 720-view / 1024-
channel problem without materialising a system matrix, while the same code
costs the scaled problems whose convergence we measure for real.  A batch
is three GPU kernels (Alg. 3): SVB creation, the MBIR kernel, and the
atomic error-sinogram merge.

Every mechanism maps to a sentence of the paper; see the module docstrings
of :mod:`repro.gpusim.calibration` (constants), :mod:`repro.layout.chunks`
(layout effects) and :mod:`repro.gpusim.atomics` (contention).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.gpu_icd import GPUExecutionTrace, GPUICDParams
from repro.ct.geometry import ParallelBeamGeometry
from repro.gpusim.atomics import expected_conflict_degree
from repro.gpusim.calibration import DEFAULT_GPU_CALIBRATION, GPUCalibration
from repro.gpusim.device import TITAN_X, GPUDeviceSpec
from repro.gpusim.kernel import GPUKernelConfig, KernelCost
from repro.gpusim.memory import TrafficVector, latency_hiding_factor, memory_time
from repro.gpusim.occupancy import occupancy
from repro.gpusim.scheduler import imbalance_factor
from repro.layout.chunks import chunk_layout_stats, naive_layout_stats, view_run_lengths
from repro.utils import check_positive

__all__ = ["SVBStats", "analytic_svb_stats", "GPUTimingModel"]


@dataclass(frozen=True)
class SVBStats:
    """Analytic SuperVoxel-buffer sizes for one SV side length."""

    sv_side: int
    rect_cells: float  # n_views x W (the padded rectangle)
    mean_band_cells: float  # sum of true per-view band widths
    width: float  # W, the widest band

    def rect_bytes(self, bytes_per_cell: int = 4) -> float:
        """Memory footprint of one SVB."""
        return self.rect_cells * bytes_per_cell


def analytic_svb_stats(geometry: ParallelBeamGeometry, sv_side: int) -> SVBStats:
    """Band statistics of an ``sv_side`` SuperVoxel from geometry alone.

    An SV tile of side ``s`` spans ``s * (|cos| + |sin|)`` pixel widths on
    the detector at each view, plus one voxel footprint of padding; the
    rectangular SVB width is the maximum over views (reached at 45 deg).
    """
    check_positive("sv_side", sv_side)
    angles = np.arange(geometry.n_views)
    w1, w2 = geometry.footprint_widths(angles)
    tile_span = (sv_side - 1) * geometry.pixel_size * (
        np.abs(np.cos(geometry.angles)) + np.abs(np.sin(geometry.angles))
    )
    band_widths = (tile_span + (w1 + w2)) / geometry.channel_spacing + 1.0
    width = float(band_widths.max())
    return SVBStats(
        sv_side=sv_side,
        rect_cells=width * geometry.n_views,
        mean_band_cells=float(band_widths.sum()),
        width=width,
    )


class GPUTimingModel:
    """Performance model of GPU-ICD on a given geometry and device."""

    def __init__(
        self,
        geometry: ParallelBeamGeometry,
        *,
        device: GPUDeviceSpec = TITAN_X,
        calibration: GPUCalibration = DEFAULT_GPU_CALIBRATION,
    ) -> None:
        self.geometry = geometry
        self.device = device
        self.cal = calibration
        self._max_warps = device.n_smm * device.max_threads_per_smm / device.warp_size
        self._raw_elements = float(view_run_lengths(geometry).sum())

    # ------------------------------------------------------------------
    # Cached geometry-derived statistics
    # ------------------------------------------------------------------
    @lru_cache(maxsize=64)
    def _chunk_stats(self, chunk_width: int):
        return chunk_layout_stats(self.geometry, chunk_width, warp_size=self.device.warp_size)

    @lru_cache(maxsize=4)
    def _naive_stats(self):
        return naive_layout_stats(self.geometry)

    @lru_cache(maxsize=64)
    def svb_stats(self, sv_side: int) -> SVBStats:
        """Cached analytic SVB statistics."""
        return analytic_svb_stats(self.geometry, sv_side)

    # ------------------------------------------------------------------
    # Component models
    # ------------------------------------------------------------------
    def tex_hit_rate(self, config: GPUKernelConfig) -> float:
        """Unified L1/texture hit rate of A-matrix reads (Table 2's column)."""
        if not config.a_via_texture:
            return 0.0
        hr = self.cal.tex_hit_rate_1byte - self.cal.tex_hit_rate_slope_per_byte * (
            config.a_matrix_bytes - 1
        )
        return float(np.clip(hr, 0.0, 1.0))

    def _view_asymmetry_waste(self, threads_per_block: int) -> float:
        """Idle-lane factor from distributing ``n_views`` of work over threads.

        720 views over 512 threads forces 2 views on 208 threads and 1 on
        the rest — §5.4's "asymmetric work distribution of the 720 views".
        """
        v = self.geometry.n_views
        if threads_per_block >= v:
            return threads_per_block / v
        return threads_per_block * np.ceil(v / threads_per_block) / v

    def _voxel_imbalance(
        self,
        voxels_per_sv: float,
        skipped_per_sv: float,
        params: GPUICDParams,
    ) -> float:
        """Makespan inflation of the per-SV voxel loop (Table 3, dynamic dist.)."""
        n_updates = max(int(round(voxels_per_sv)), 1)
        n_skipped = max(int(round(skipped_per_sv)), 0)
        return _cached_voxel_imbalance(
            n_updates,
            n_skipped,
            params.threadblocks_per_sv,
            params.dynamic_scheduling,
            self.cal.skipped_voxel_cost,
        )

    # ------------------------------------------------------------------
    # Kernel / batch / equit times
    # ------------------------------------------------------------------
    def mbir_kernel_cost(
        self,
        n_svs: int,
        voxels_per_sv: float,
        params: GPUICDParams,
        config: GPUKernelConfig,
        *,
        skipped_per_sv: float = 0.0,
    ) -> KernelCost:
        """Time of one MBIR kernel processing ``n_svs`` SVs."""
        check_positive("n_svs", n_svs)
        if voxels_per_sv < 0 or skipped_per_sv < 0:
            raise ValueError("voxel counts must be non-negative")
        device = self.device
        cal = self.cal
        threads = params.threads_per_block
        occ = occupancy(
            device,
            threads,
            config.registers_per_thread,
            config.shared_bytes_per_block(threads),
        )
        warps_per_block = -(-threads // device.warp_size)
        blocks_launched = n_svs * params.threadblocks_per_sv
        resident_blocks = min(blocks_launched, occ.blocks_per_smm * device.n_smm)
        active_warps = resident_blocks * warps_per_block
        hiding = latency_hiding_factor(
            active_warps, self._max_warps, cal.warp_saturation_fraction
        )

        # Per-voxel layout statistics.
        if config.transformed_layout:
            st = self._chunk_stats(params.chunk_width)
            elements = st.elements
            svb_read_bytes = st.array_traffic_bytes(4)
            a_bytes = st.array_traffic_bytes(config.a_matrix_bytes)
            request_eff = st.request_efficiency(4)
            metadata_bytes = st.n_chunks * 32.0
        else:
            ns = self._naive_stats()
            elements = ns.raw_elements
            svb_read_bytes = ns.array_traffic_bytes(4) + ns.lookup_sectors * ns.sector_bytes
            a_bytes = ns.array_traffic_bytes(config.a_matrix_bytes)
            request_eff = ns.request_efficiency
            metadata_bytes = 0.0
        raw = self._raw_elements

        # SVB residency in L2 (consecutive threadblocks per SV concentrate
        # the concurrent working set, §3.2).
        svb = self.svb_stats(params.sv_side)
        active_svbs = resident_blocks / params.threadblocks_per_sv + cal.svb_working_margin
        working_set = active_svbs * svb.rect_bytes(4)
        l2_capacity = cal.l2_svb_capacity_fraction * device.l2_bytes
        svb_l2_hit = min(1.0, l2_capacity / working_set) if working_set > 0 else 1.0

        # Texture path for the A-matrix.
        tex_hr = self.tex_hit_rate(config)
        if config.a_via_texture:
            tex_bytes = a_bytes
            a_l2_bytes = (1.0 - tex_hr) * a_bytes
        else:
            tex_bytes = 0.0
            a_l2_bytes = a_bytes
        a_dram_bytes = a_l2_bytes * (1.0 - cal.a_l2_hit_rate)

        # Atomic write-back of the voxel's footprint into the SVB.
        raw_degree = expected_conflict_degree(raw, params.threadblocks_per_sv, svb.rect_cells)
        intra_degree = 1.0 + (raw_degree - 1.0) * cal.atomic_conflict_scale
        atomic_ops = raw
        atomic_bytes = atomic_ops * 8.0 * intra_degree  # read-modify-write

        # Missed SVB reads re-occupy the L2 pipelines (refill + replay), and
        # the 4-byte vs 8-byte access-width efficiency (§4.3.2) applies to
        # the read stream only — write-backs are 4-byte atomics either way.
        # Service bytes are normalised to the double-read efficiency that
        # memory_time() charges for the whole ledger.
        read_eff = (
            cal.l2_efficiency_double if config.sinogram_as_double else cal.l2_efficiency_float
        )
        svb_l2_physical = svb_read_bytes * (
            1.0 + (1.0 - svb_l2_hit) * cal.l2_miss_expansion
        )
        svb_l2_service = svb_l2_physical * (cal.l2_efficiency_double / read_eff)
        per_voxel = TrafficVector(
            dram_bytes=a_dram_bytes + (1.0 - svb_l2_hit) * svb_read_bytes,
            l2_bytes=svb_l2_service
            + a_l2_bytes * cal.a_traffic_weight
            + atomic_bytes
            + metadata_bytes,
            tex_bytes=tex_bytes,
            shared_bytes=elements * cal.shared_bytes_per_element,
            flops=elements * cal.flops_per_element,
            atomic_ops=atomic_ops * intra_degree,
        )
        n_updates = n_svs * voxels_per_sv
        skip_equiv = n_svs * skipped_per_sv * cal.skipped_voxel_cost
        traffic = per_voxel.scaled(n_updates + skip_equiv)
        # Physical bytes (no access-width service normalisation) for the
        # achieved-bandwidth report.
        per_voxel_physical = TrafficVector(
            dram_bytes=per_voxel.dram_bytes,
            l2_bytes=per_voxel.l2_bytes - (svb_l2_service - svb_l2_physical),
            tex_bytes=per_voxel.tex_bytes,
            shared_bytes=per_voxel.shared_bytes,
            flops=per_voxel.flops,
            atomic_ops=per_voxel.atomic_ops,
        )
        traffic_physical = per_voxel_physical.scaled(n_updates + skip_equiv)

        l2_eff = cal.l2_efficiency_double * request_eff
        times = memory_time(traffic, device, hiding_factor=hiding, l2_access_efficiency=l2_eff)

        # Serial per-voxel work (scheduling, reduction, scalar update),
        # parallel across resident blocks.
        reduction_cycles = np.log2(max(threads, 2)) * cal.reduction_cycles_per_step
        overhead_cycles = (n_updates + skip_equiv) * (
            cal.per_voxel_overhead_cycles + reduction_cycles
        )
        times["overhead"] = overhead_cycles / (device.clock_hz * max(resident_blocks, 1))
        times["atomics"] = traffic.atomic_ops / device.atomic_throughput_ops

        bottleneck = max(times, key=times.get)
        raw_imbalance = self._voxel_imbalance(voxels_per_sv, skipped_per_sv, params)
        imbalance = 1.0 + (raw_imbalance - 1.0) * cal.imbalance_weight
        # Idle lanes from the asymmetric view distribution stretch the
        # whole lockstep execution (§5.4, the 512-thread penalty).
        waste = self._view_asymmetry_waste(threads)
        total = (
            max(times.values()) * imbalance * waste + device.kernel_launch_overhead_s
        ) * cal.time_scale
        return KernelCost(
            total=total,
            bottleneck=bottleneck,
            times=times,
            occupancy=occ.occupancy,
            hiding_factor=hiding,
            imbalance=imbalance,
            l2_hit_rate=svb_l2_hit,
            tex_hit_rate=tex_hr,
            traffic=traffic_physical,
        )

    def bandwidth_report(
        self,
        params: GPUICDParams,
        config: GPUKernelConfig | None = None,
        *,
        zero_skip_fraction: float = 0.4,
    ) -> dict[str, float]:
        """Achieved bandwidth per memory level (GB/s) at steady state.

        Mirrors §5.3's accounting: each level's moved bytes divided by the
        kernel time, plus the aggregate and its ratio to the device-memory
        peak — the paper reports 1802 GB/s total, "5.36X that of the
        maximum device memory bandwidth".
        """
        config = config if config is not None else GPUKernelConfig()
        voxels = params.sv_side**2 * (1.0 - zero_skip_fraction)
        skipped = params.sv_side**2 * zero_skip_fraction
        kc = self.mbir_kernel_cost(
            params.batch_size, voxels, params, config, skipped_per_sv=skipped
        )
        t = kc.total
        traffic = kc.traffic
        report = {
            "dram_gbps": traffic.dram_bytes / t / 1e9,
            "l2_gbps": traffic.l2_bytes / t / 1e9,
            "tex_gbps": traffic.tex_bytes / t / 1e9,
            "shared_gbps": traffic.shared_bytes / t / 1e9,
        }
        report["total_gbps"] = sum(report.values())
        report["ratio_to_dram_peak"] = report["total_gbps"] * 1e9 / self.device.dram_peak_bw
        return report

    def svb_create_time(self, n_svs: int, sv_side: int) -> float:
        """Time of the SVB-creation kernel for a batch (Alg. 3 line 28)."""
        svb = self.svb_stats(sv_side)
        traffic = n_svs * svb.rect_cells * self.cal.svb_create_bytes_per_cell
        bw = self.device.dram_peak_bw * 0.6  # strided gather from the sinogram
        return (traffic / bw + self.device.kernel_launch_overhead_s) * self.cal.time_scale

    def merge_time(self, n_svs: int, sv_side: int, params: GPUICDParams) -> float:
        """Time of the atomic error-sinogram merge kernel (Alg. 3 line 30)."""
        svb = self.svb_stats(sv_side)
        sino_cells = self.geometry.n_views * self.geometry.n_channels
        degree = expected_conflict_degree(svb.mean_band_cells, n_svs, sino_cells)
        ops = n_svs * svb.mean_band_cells
        bytes_moved = n_svs * svb.rect_cells * self.cal.svb_merge_bytes_per_cell * degree
        t_bw = bytes_moved / (self.device.l2_peak_bw * self.cal.l2_efficiency_float)
        t_ops = ops * degree / self.device.atomic_throughput_ops
        return (max(t_bw, t_ops) + self.device.kernel_launch_overhead_s) * self.cal.time_scale

    def batch_time(
        self,
        n_svs: int,
        voxels_per_sv: float,
        params: GPUICDParams,
        config: GPUKernelConfig,
        *,
        skipped_per_sv: float = 0.0,
    ) -> float:
        """Create + MBIR + merge time for one batch of SVs."""
        kernel = self.mbir_kernel_cost(
            n_svs, voxels_per_sv, params, config, skipped_per_sv=skipped_per_sv
        )
        return (
            kernel.total
            + self.svb_create_time(n_svs, params.sv_side)
            + self.merge_time(n_svs, params.sv_side, params)
        )

    def equit_time(
        self,
        params: GPUICDParams,
        config: GPUKernelConfig | None = None,
        *,
        zero_skip_fraction: float = 0.0,
    ) -> float:
        """Modeled seconds per equit (n_voxels actual voxel updates).

        ``zero_skip_fraction`` is the fraction of *visited* voxels that
        zero-skipping rejects; equits count only performed updates, so the
        skipped visits add their (small) test cost on top.
        """
        config = config if config is not None else GPUKernelConfig()
        if not 0.0 <= zero_skip_fraction < 1.0:
            raise ValueError("zero_skip_fraction must be in [0, 1)")
        voxels_per_sv = params.sv_side**2 * (1.0 - zero_skip_fraction)
        skipped_per_sv = params.sv_side**2 * zero_skip_fraction
        updates_per_batch = params.batch_size * voxels_per_sv
        # One equit = n_voxels *performed* updates (visited-and-skipped
        # voxels do not count, but their visit cost is charged above).
        n_batches = self.geometry.n_voxels / updates_per_batch
        return n_batches * self.batch_time(
            params.batch_size,
            voxels_per_sv,
            params,
            config,
            skipped_per_sv=skipped_per_sv,
        )

    def run_time_from_trace(
        self,
        trace: GPUExecutionTrace,
        config: GPUKernelConfig | None = None,
    ) -> float:
        """Modeled wall time of a *real* (scaled) GPU-ICD run.

        Walks the recorded kernel launches, costing each batch with its
        actual SV count and per-SV update/skip statistics.  The model's
        geometry must match the geometry the trace was produced on.
        """
        config = config if config is not None else GPUKernelConfig()
        params = trace.params
        total = 0.0
        for k in trace.kernels:
            if k.n_svs == 0:
                continue
            updates = np.array([s.updates for s in k.sv_stats], dtype=np.float64)
            skipped = np.array([s.skipped for s in k.sv_stats], dtype=np.float64)
            total += self.batch_time(
                k.n_svs,
                float(updates.mean()),
                params,
                config,
                skipped_per_sv=float(skipped.mean()),
            )
        return total

    def measured_vs_modeled(
        self,
        trace: GPUExecutionTrace,
        metrics,
        config: GPUKernelConfig | None = None,
    ) -> dict[str, dict[str, float]]:
        """Join measured phase wall-clock against the model, per kernel phase.

        ``metrics`` is the :class:`~repro.observability.MetricsRecorder` an
        instrumented :func:`~repro.core.gpu_icd.gpu_icd_reconstruct` run
        recorded into: its ``extract`` / ``update`` / ``merge`` span totals
        are the *measured* seconds of the three Alg. 3 kernels (as executed
        by this Python emulation), while the same phases costed from the
        recorded ``trace`` on this model's geometry/device are the
        *modeled* seconds.  Returns::

            {"modeled_s":  {"extract": .., "update": .., "merge": .., "total": ..},
             "measured_s": {...same keys...},
             "measured_over_modeled": {...same keys (NaN where unmodeled)...}}

        The join is meaningful per-phase *shape-wise* even though absolute
        scales differ (interpreted NumPy vs a modeled Titan X): it shows
        where the emulation's time goes versus where the hardware model
        says a GPU's would.  Use the same geometry the trace was produced
        on for a like-for-like join.
        """
        config = config if config is not None else GPUKernelConfig()
        params = trace.params
        modeled = {"extract": 0.0, "update": 0.0, "merge": 0.0}
        for k in trace.kernels:
            if k.n_svs == 0:
                continue
            updates = np.array([s.updates for s in k.sv_stats], dtype=np.float64)
            skipped = np.array([s.skipped for s in k.sv_stats], dtype=np.float64)
            modeled["extract"] += self.svb_create_time(k.n_svs, params.sv_side)
            modeled["update"] += self.mbir_kernel_cost(
                k.n_svs,
                float(updates.mean()),
                params,
                config,
                skipped_per_sv=float(skipped.mean()),
            ).total
            modeled["merge"] += self.merge_time(k.n_svs, params.sv_side, params)
        modeled["total"] = modeled["extract"] + modeled["update"] + modeled["merge"]

        totals = metrics.span_totals()
        measured = {
            phase: totals.get(phase, {"total_s": 0.0})["total_s"]
            for phase in ("extract", "update", "merge")
        }
        measured["total"] = measured["extract"] + measured["update"] + measured["merge"]
        ratio = {
            phase: (measured[phase] / modeled[phase]) if modeled[phase] > 0 else float("nan")
            for phase in modeled
        }
        return {
            "modeled_s": modeled,
            "measured_s": measured,
            "measured_over_modeled": ratio,
        }

    def reconstruction_time(
        self,
        equits: float,
        params: GPUICDParams,
        config: GPUKernelConfig | None = None,
        *,
        zero_skip_fraction: float = 0.0,
    ) -> float:
        """Total modeled reconstruction time = measured equits x modeled equit time."""
        if equits < 0:
            raise ValueError("equits must be >= 0")
        return equits * self.equit_time(params, config, zero_skip_fraction=zero_skip_fraction)


@lru_cache(maxsize=512)
def _cached_voxel_imbalance(
    n_updates: int,
    n_skipped: int,
    n_workers: int,
    dynamic: bool,
    skipped_cost: float,
) -> float:
    """Deterministic synthetic-task imbalance of the intra-SV voxel loop."""
    rng = np.random.default_rng(12345)
    costs = np.concatenate(
        [np.ones(n_updates), np.full(n_skipped, skipped_cost)]
    )
    factors = []
    for _ in range(4):
        rng.shuffle(costs)
        factors.append(imbalance_factor(costs, n_workers, dynamic=dynamic))
    return float(np.mean(factors))

"""Calibration constants of the first-order performance model.

The model's *structure* (occupancy, coalescing, working sets, scheduling,
contention) produces the paper's trends; the constants below anchor its
absolute scale to numbers the paper publishes.  Each constant records the
published observation it is anchored to.  None of them vary across the
parameter sweeps — the sweep shapes (Figs. 6, 7a-d; Tables 2-3) come from
the model mechanics, not from per-point fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GPUCalibration",
    "CPUCalibration",
    "DEFAULT_GPU_CALIBRATION",
    "DEFAULT_CPU_CALIBRATION",
]


@dataclass(frozen=True)
class GPUCalibration:
    """Constants of the GPU kernel-time model."""

    #: Fraction of maximum resident warps needed to saturate the memory
    #: system.  Anchors two Table 3 rows at once: disabling intra-SV
    #: parallelism leaves ~256 resident warps (6.251x slowdown), while the
    #: 44-register build still retains ~960 (only 1.124x).
    warp_saturation_fraction: float = 0.70

    #: Achieved fraction of L2 peak bandwidth for 8-byte vs 4-byte loads
    #: (anchor: §5.3 — 472 GB/s with the double trick vs 395 GB/s without,
    #: against a ~950 GB/s peak).
    l2_efficiency_double: float = 0.50
    l2_efficiency_float: float = 0.42

    #: Texture-cache hit rate for 1-byte A-matrix entries and its slope per
    #: extra byte of entry width (anchors: Table 2 — 60.36 % for char,
    #: 41.78 % for float).
    tex_hit_rate_1byte: float = 0.6036
    tex_hit_rate_slope_per_byte: float = (0.6036 - 0.4178) / 3.0

    #: Fraction of texture-missed (or untextured) A-matrix traffic that
    #: still hits in L2 before reaching DRAM (spatial reuse between
    #: consecutive voxels' padded chunks).
    a_l2_hit_rate: float = 0.55

    #: SVB working-set margin: SVBs beyond the actively-read set that
    #: occupy L2 (the next batch being created, write-back in flight).
    svb_working_margin: float = 2.0

    #: Fraction of L2 capacity available to SVBs (the streamed A-matrix and
    #: error-sinogram traffic pollute the rest).
    l2_svb_capacity_fraction: float = 0.50

    #: Each missed SVB read expands effective L2 service work by this
    #: factor (miss handling + refill re-occupies the L2 pipelines).  This
    #: is the mechanism behind Fig. 7b: many threadblocks per SV shrink the
    #: concurrent SVB set and avoid the expansion (§3.2's "L2 temporal
    #: locality").
    l2_miss_expansion: float = 1.0

    #: Scale on the expected intra-SV atomic conflict degree (concurrent
    #: voxels of one SV overlap in band cells, but their write-backs spread
    #: over the voxel-update duration, so only a fraction collide).
    atomic_conflict_scale: float = 0.2

    #: Weight of A-matrix traffic in the L2 ledger (the streamed A-matrix
    #: bypasses most of the L2 pipeline via the texture path datapath;
    #: anchor: Table 2's modest 1.17x total spread across A-path configs).
    a_traffic_weight: float = 0.35

    #: Fraction of the voxel-loop imbalance that reaches the kernel time
    #: (bandwidth slack absorbs the rest; anchor: Table 3's 1.064x for
    #: static voxel distribution).
    imbalance_weight: float = 0.25

    #: Flops per (padded) footprint element in the theta pass: two FMAs for
    #: theta1/theta2, dequantisation, and index arithmetic.
    flops_per_element: float = 8.0

    #: Shared-memory bytes moved per footprint element (partial-sum staging
    #: and spilled thread-locals; anchor: §5.3's 456 GB/s achieved shared
    #: bandwidth, comparable to the 472 GB/s L2).
    shared_bytes_per_element: float = 4.0

    #: Cycles per tree-reduction step (shared-memory latency and
    #: __syncthreads amortisation).
    reduction_cycles_per_step: float = 24.0

    #: Per-voxel fixed overhead cycles (queue atomicFetch, chunk metadata,
    #: neighbor gathers, the scalar update on thread 0).
    per_voxel_overhead_cycles: float = 2000.0

    #: Relative cost of a zero-skipped voxel (the skip test still reads the
    #: neighborhood).
    skipped_voxel_cost: float = 0.05

    #: Bytes moved per SVB cell by the create kernel (read e + write SVB)
    #: and by the merge kernel (read both SVBs + atomic read-modify-write).
    svb_create_bytes_per_cell: float = 8.0
    svb_merge_bytes_per_cell: float = 16.0

    #: Global scale factor absorbing residual constant-factor model error
    #: (anchor: GPU-ICD time/equit = 0.07 s on the 512^2 suite, Table 1).
    time_scale: float = 0.93


@dataclass(frozen=True)
class CPUCalibration:
    """Constants of the CPU timing model (PSV-ICD and sequential ICD)."""

    #: Effective cycles per footprint element for PSV-ICD's SVB-resident,
    #: prefetch-friendly, vectorised inner loop (anchor: 0.41 s/equit on
    #: 512^2 slices, Table 1).
    psv_cycles_per_element: float = 28.5

    #: Effective cycles per footprint element for sequential ICD's
    #: sinusoidal cache-thrashing walk: each short run lands on a fresh
    #: 64-byte line whose fetch latency is only partially overlapped
    #: (anchor: Table 1's 138.26x PSV-ICD speedup over sequential ICD).
    seq_cycles_per_element: float = 128.0

    #: Penalty growth once the SVB working set (error + weight buffers and
    #: the delta copy) overflows a core's private L2 (drives the CPU side
    #: of the SV-side trade-off; PSV-ICD's optimum is side 13, Table 1).
    l2_overflow_penalty: float = 1.0  # extra cycles fraction per x of overflow

    #: Per-SV fixed cost on one core: SVB creation, delta computation,
    #: locked merge (seconds).
    per_sv_overhead_s: float = 120e-6

    #: Per-voxel fixed overhead cycles (loop control, prior update).
    per_voxel_overhead_cycles: float = 800.0

    #: Load-imbalance factor of the SV-level parallel loop (16 cores over
    #: tens of SVs per wave; anchor: the high run-to-run std-dev of
    #: PSV-ICD in Table 1 reflects scheduling noise, mean effect ~5 %).
    imbalance_factor: float = 1.05

    #: Global scale factor (anchor: PSV-ICD time/equit = 0.41 s, Table 1).
    time_scale: float = 1.0


DEFAULT_GPU_CALIBRATION = GPUCalibration()
DEFAULT_CPU_CALIBRATION = CPUCalibration()

"""Hardware specifications for the performance-model substrate.

Two machines from the paper's §5.1 system setup:

* **GPU** — NVIDIA Titan X (Maxwell GM200): 24 SMMs x 128 CUDA cores at
  1127 MHz, 12 GB device memory at 336 GB/s, 3 MB shared L2, 96 KB shared
  memory and a 24 KB unified L1/texture cache per SMM.
* **CPU** — two Intel Xeon E5-2670 sockets, 16 cores total at 2.6 GHz,
  230 W TDP ("iso-power" with the GPU's 250 W).

Peak numbers come from the vendor datasheets and from measurements the paper
itself reports (e.g. the L2 quirk that ``float`` loads reach only ~50 % of
L2 bandwidth while ``double`` loads reach 100 %, §4.3.2).  Everything the
timing model treats as a *device property* lives here; everything that is a
*calibration constant* of our first-order model lives in
:mod:`repro.gpusim.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUDeviceSpec", "CPUSpec", "TITAN_X", "XEON_E5_2670_X2"]


@dataclass(frozen=True)
class GPUDeviceSpec:
    """A CUDA-like GPU for the occupancy and memory models."""

    name: str
    n_smm: int
    cores_per_smm: int
    clock_hz: float
    warp_size: int
    max_threads_per_smm: int
    max_blocks_per_smm: int
    max_threads_per_block: int
    registers_per_smm: int
    register_alloc_granularity: int  # registers, allocated per warp
    shared_mem_per_smm: int  # bytes
    shared_mem_per_block: int  # bytes
    l2_bytes: int
    unified_l1_tex_bytes: int  # per SMM
    dram_bytes: int
    dram_peak_bw: float  # bytes/s
    l2_peak_bw: float  # bytes/s (aggregate)
    tex_peak_bw: float  # bytes/s (aggregate, on hits)
    shared_peak_bw: float  # bytes/s (aggregate)
    l2_float_efficiency: float  # fraction of L2 peak reachable with 4B loads
    sector_bytes: int  # memory transaction granularity
    kernel_launch_overhead_s: float
    atomic_throughput_ops: float  # independent atomics/s (no conflicts)
    atomic_conflict_latency_s: float  # serialization cost per conflicting atomic

    @property
    def total_cores(self) -> int:
        """Total CUDA cores."""
        return self.n_smm * self.cores_per_smm

    @property
    def max_resident_threads(self) -> int:
        """Maximum co-resident threads on the whole device."""
        return self.n_smm * self.max_threads_per_smm

    @property
    def peak_flops(self) -> float:
        """Single-precision FMA peak (2 flops per core per cycle)."""
        return 2.0 * self.total_cores * self.clock_hz


#: The paper's GPU (§5.1).  Bandwidth figures: 336 GB/s DRAM is the Titan X
#: datasheet; the L2/texture/shared peaks are set so the paper's *achieved*
#: numbers (472 GB/s L2 with the double trick, 702 GB/s texture at 60 % hit
#: rate, 456 GB/s shared) sit at realistic fractions of peak.
TITAN_X = GPUDeviceSpec(
    name="NVIDIA Titan X (Maxwell GM200)",
    n_smm=24,
    cores_per_smm=128,
    clock_hz=1127e6,
    warp_size=32,
    max_threads_per_smm=2048,
    max_blocks_per_smm=32,
    max_threads_per_block=1024,
    registers_per_smm=65536,
    register_alloc_granularity=256,
    shared_mem_per_smm=96 * 1024,
    shared_mem_per_block=48 * 1024,
    l2_bytes=3 * 1024 * 1024,
    unified_l1_tex_bytes=24 * 1024,
    dram_bytes=12 * 1024**3,
    dram_peak_bw=336e9,
    l2_peak_bw=950e9,
    tex_peak_bw=1100e9,
    shared_peak_bw=1600e9,
    l2_float_efficiency=0.50,  # §4.3.2: float reaches only 50% of L2 bw
    sector_bytes=32,
    kernel_launch_overhead_s=8e-6,
    atomic_throughput_ops=40e9,
    atomic_conflict_latency_s=250e-9,
)


@dataclass(frozen=True)
class CPUSpec:
    """A multi-core CPU for the PSV-ICD / sequential-ICD timing model."""

    name: str
    n_cores: int
    clock_hz: float
    simd_width_floats: int
    l1_bytes: int  # per core
    l2_bytes: int  # per core (private)
    l3_bytes: int  # per socket
    n_sockets: int
    dram_peak_bw: float  # bytes/s aggregate
    dram_latency_s: float
    cache_line_bytes: int
    lock_overhead_s: float  # acquiring the error-sinogram lock

    @property
    def per_core_peak_flops(self) -> float:
        """Single-precision FMA peak per core."""
        return 2.0 * self.simd_width_floats * self.clock_hz


#: The paper's CPU platform (§5.1): 2 sockets x 8-core Xeon E5-2670
#: (Sandy Bridge EP, AVX, 20 MB L3 per socket, 51.2 GB/s per socket).
XEON_E5_2670_X2 = CPUSpec(
    name="2x Intel Xeon E5-2670 (16 cores)",
    n_cores=16,
    clock_hz=2.6e9,
    simd_width_floats=8,
    l1_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    l3_bytes=20 * 1024 * 1024,
    n_sockets=2,
    dram_peak_bw=2 * 51.2e9,
    dram_latency_s=80e-9,
    cache_line_bytes=64,
    lock_overhead_s=1e-6,
)

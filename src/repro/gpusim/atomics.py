"""Atomic-operation cost model for the error-sinogram write-back.

GPU-ICD merges SV deltas into the global error sinogram with CUDA atomic
adds (Alg. 3 line 30; §3.2 notes these "cannot be performed as double").
Independent atomics stream at near-memory throughput, but atomics to the
*same* address serialize at roughly an L2 round-trip each.  With small
SuperVoxels the sinogram bands of the (up to) ``batch_size`` concurrently
merged SVs overlap heavily, so contention grows as SV side shrinks — one of
the two effects producing the left wall of Fig. 7a's U-shape.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import GPUDeviceSpec

__all__ = ["expected_conflict_degree", "atomic_writeback_time"]


def expected_conflict_degree(
    band_cells_per_sv: float,
    n_concurrent_svs: int,
    sinogram_cells: int,
) -> float:
    """Expected number of concurrent writers per written sinogram cell.

    Approximates the batch's bands as independently placed over the
    sinogram: with ``k`` SVs each covering ``c`` cells of an ``S``-cell
    sinogram, a covered cell is written by ``1 + (k - 1) * c / S`` writers
    in expectation.  (Bands of checkerboard-separated SVs are not literally
    independent, but the paper's trend — relative overlap grows as SVs
    shrink, because footprint padding is a fixed overhead per band row —
    only needs the first-order behaviour.)
    """
    if band_cells_per_sv < 0 or n_concurrent_svs < 0 or sinogram_cells <= 0:
        raise ValueError("band/SV/sinogram sizes must be non-negative (sinogram positive)")
    if n_concurrent_svs == 0:
        return 0.0
    return 1.0 + (n_concurrent_svs - 1) * band_cells_per_sv / sinogram_cells


def atomic_writeback_time(
    n_atomic_ops: float,
    conflict_degree: float,
    device: GPUDeviceSpec,
) -> float:
    """Seconds spent in the atomic merge of one batch.

    ``n_atomic_ops`` conflict-free atomics stream at
    ``device.atomic_throughput_ops``; each *extra* expected writer per cell
    serializes at ``device.atomic_conflict_latency_s``, amortised over the
    concurrent atomic pipelines (one per SMM).
    """
    if n_atomic_ops < 0:
        raise ValueError("n_atomic_ops must be >= 0")
    if conflict_degree < 0:
        raise ValueError("conflict_degree must be >= 0")
    base = n_atomic_ops / device.atomic_throughput_ops
    extra_serial = max(conflict_degree - 1.0, 0.0)
    contention = (
        n_atomic_ops * extra_serial * device.atomic_conflict_latency_s / device.n_smm
    )
    return base + contention

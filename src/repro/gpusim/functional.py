"""Functional (numerics-level) emulation of the MBIR GPU kernel.

The timing model in :mod:`repro.gpusim.timing` prices the kernel; this
module *executes* it, statement for statement, with CUDA threadblock
semantics — the emulated program is Alg. 3 lines 4-13:

    while (voxel = atomicFetch(svId)):        # dynamic voxel queue
        each thread computes partial theta1/theta2 over its chunk rows
        store partials to shared memory; __syncthreads()
        tree-style reduction of theta1/theta2;  __syncthreads()
        thread 0 updates the voxel value
        all threads atomically write the error delta back to the SVB

The emulator gives each thread a private register file (a dict), a block-
shared memory array, a ``syncthreads`` barrier that *validates* barrier
semantics (every thread must arrive; divergence around a barrier is the
classic CUDA bug), and runs threads in warp-lockstep order.  Its purpose:

* prove the kernel decomposition (chunked partial sums + tree reduction +
  atomic write-back) is numerically equivalent to the reference
  :class:`~repro.core.voxel_update.SliceUpdater` update, including when
  several threadblocks of one SV interleave (the intra-SV staleness the
  drivers emulate at a coarser grain);
* catch structural bugs a pure cost model cannot (mis-sized reductions for
  non-power-of-two thread counts, barrier divergence, lost atomic updates).

It is deliberately an *interpreter* (slow, small problems only) — the
production numerics stay in the vectorised drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.supervoxel import SuperVoxel
from repro.core.voxel_update import SliceUpdater, solve_surrogate
from repro.utils import check_positive

__all__ = ["SyncError", "EmulatedBlock", "MBIRKernelEmulator"]


class SyncError(RuntimeError):
    """Raised when __syncthreads() is not reached by every thread."""


@dataclass
class EmulatedBlock:
    """One threadblock: threads, shared memory, and a validating barrier.

    Threads are represented as generator coroutines that yield at each
    ``__syncthreads()``; the block runs them in warp-lockstep rounds and
    checks that all either yield (arrive at the barrier) or have finished.
    """

    n_threads: int
    shared_words: int
    shared: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        check_positive("n_threads", self.n_threads)
        check_positive("shared_words", self.shared_words)
        self.shared = np.zeros(self.shared_words, dtype=np.float64)

    def run(self, thread_program, *args) -> None:
        """Run ``thread_program(tid, block, *args)`` for every thread.

        The program must be a generator function yielding once per
        ``__syncthreads()``.  All threads must execute the same number of
        barriers (CUDA's requirement); otherwise :class:`SyncError`.
        """
        threads = [thread_program(tid, self, *args) for tid in range(self.n_threads)]
        alive = [True] * self.n_threads
        while any(alive):
            yielded = 0
            finished = 0
            for tid, gen in enumerate(threads):
                if not alive[tid]:
                    continue
                try:
                    next(gen)
                    yielded += 1
                except StopIteration:
                    alive[tid] = False
                    finished += 1
            # CUDA semantics: a barrier must be reached by every thread of
            # the block.  A round in which some threads sync while others
            # return is divergence.
            if yielded and finished:
                raise SyncError(
                    "barrier divergence: some threads reached __syncthreads(), "
                    "others returned"
                )


def _tree_reduce(shared: np.ndarray, base: int, n: int) -> None:
    """In-place tree reduction of ``shared[base : base + n]`` into ``base``.

    Handles non-power-of-two ``n`` the way CUDA reductions do: fold the
    overhang onto the first elements, then halve.
    """
    size = 1
    while size * 2 < n:
        size *= 2
    # Fold the overhang [size, n) onto [0, n - size).
    for i in range(size, n):
        shared[base + i - size] += shared[base + i]
    while size > 1:
        half = size // 2
        for i in range(half, size):
            shared[base + i - half] += shared[base + i]
        size = half


@dataclass
class MBIRKernelEmulator:
    """Executes the MBIR_GPU_Kernel of Alg. 3 for one SuperVoxel.

    Parameters
    ----------
    updater:
        The reference slice state (fused w*A products, theta2, prior).
    sv:
        The SuperVoxel whose voxels the kernel updates.
    threads_per_block:
        Threads cooperating on one voxel (intra-voxel parallelism).
    threadblocks:
        Concurrent blocks pulling voxels from the shared dynamic queue
        (intra-SV parallelism).  Blocks interleave at *voxel* granularity:
        all blocks' in-flight voxels compute against the same SVB state,
        then their write-backs apply atomically — the same bulk-synchronous
        semantics as :func:`repro.core.sv_engine.process_supervoxel` with
        ``stale_width = threadblocks``.
    """

    updater: SliceUpdater
    sv: SuperVoxel
    threads_per_block: int = 64
    threadblocks: int = 1

    def __post_init__(self) -> None:
        check_positive("threads_per_block", self.threads_per_block)
        check_positive("threadblocks", self.threadblocks)

    # ------------------------------------------------------------------
    def _voxel_program(self, tid, block, voxel, member, x_flat, svb, result):
        """One thread's share of a voxel update (generator; yields = barrier)."""
        nt = self.threads_per_block
        footprint = self.sv.member_footprint(member)
        sl = self.updater.column_slice(voxel)
        wa = self.updater.wa[sl]
        a = self.updater.a_data[sl]

        # --- partial theta1 over this thread's strided elements ----------
        part1 = 0.0
        for i in range(tid, footprint.size, nt):
            part1 += -wa[i] * svb[footprint[i]]
        block.shared[tid] = part1
        yield  # __syncthreads()

        # --- tree reduction (thread 0 stands in for the warp cascade) ----
        if tid == 0:
            _tree_reduce(block.shared, 0, nt)
        yield  # __syncthreads()

        # --- thread 0 solves the surrogate and publishes delta -----------
        if tid == 0:
            theta1 = float(block.shared[0])
            theta2 = float(self.updater.theta2[voxel])
            v = float(x_flat[voxel])
            nb_idx = self.updater.neighborhood.indices[voxel]
            valid = nb_idx >= 0
            u = solve_surrogate(
                v,
                theta1,
                theta2,
                x_flat[nb_idx[valid]],
                self.updater.neighborhood.weights[valid],
                self.updater.prior,
                positivity=self.updater.positivity,
            )
            result["new_value"] = u
            result["delta"] = u - v
        yield  # __syncthreads()

        # --- all threads atomically write back their share ---------------
        delta = result["delta"]
        if delta != 0.0:
            for i in range(tid, footprint.size, nt):
                # atomicAdd on the SVB cell.
                svb[footprint[i]] -= a[i] * delta

    def _update_one_voxel(self, member, x_flat, svb) -> float:
        voxel = int(self.sv.voxels[member])
        block = EmulatedBlock(self.threads_per_block, self.threads_per_block)
        result: dict = {"delta": 0.0, "new_value": float(x_flat[voxel])}
        block.run(self._voxel_program, voxel, member, x_flat, svb, result)
        x_flat[voxel] = result["new_value"]
        return result["delta"]

    # ------------------------------------------------------------------
    def run(
        self,
        x_flat: np.ndarray,
        svb: np.ndarray,
        *,
        order: np.ndarray | None = None,
        zero_skip: bool = False,
    ) -> int:
        """Process all member voxels; returns the number of updates.

        ``order`` fixes the dynamic queue's pop order (default: member
        order).  With ``threadblocks > 1``, consecutive queue pops form a
        concurrent wave: proposals are computed against the pre-wave state
        and applied together (see class docstring).
        """
        if order is None:
            order = np.arange(self.sv.n_voxels)
        updates = 0
        for start in range(0, order.size, self.threadblocks):
            wave = order[start : start + self.threadblocks]
            proposals = []
            for m in wave:
                m = int(m)
                voxel = int(self.sv.voxels[m])
                if zero_skip and self.updater.should_skip(voxel, x_flat):
                    continue
                # Compute phase against the shared pre-wave state.
                x_snapshot = x_flat.copy()
                svb_snapshot = svb.copy()
                block = EmulatedBlock(self.threads_per_block, self.threads_per_block)
                result: dict = {"delta": 0.0, "new_value": float(x_snapshot[voxel])}
                block.run(self._voxel_program, voxel, m, x_snapshot, svb_snapshot, result)
                proposals.append((m, voxel, result["new_value"]))
            for m, voxel, u in proposals:
                delta = u - float(x_flat[voxel])
                if delta != 0.0:
                    x_flat[voxel] = u
                    footprint = self.sv.member_footprint(m)
                    sl = self.updater.column_slice(voxel)
                    svb[footprint] -= self.updater.a_data[sl] * delta
                updates += 1
        return updates

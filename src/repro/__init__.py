"""GPU-ICD: Model-based Iterative CT Image Reconstruction on GPUs.

A full reproduction of Sabne et al., PPoPP 2017, built on a deterministic
GPU performance-model substrate (see DESIGN.md for the substitution map).

Subpackages
-----------
``repro.ct``
    CT substrate: parallel-beam geometry, trapezoid-footprint system
    matrix, phantoms, scanner noise model, and the FBP direct-method
    baseline.
``repro.core``
    MBIR core: q-GGMRF/quadratic MRF priors, the Alg. 1 voxel update, and
    the three drivers — sequential ICD, PSV-ICD (Alg. 2) and GPU-ICD
    (Alg. 3) with SuperVoxels, checkerboarding and batching.
``repro.gpusim``
    The hardware substrate: Maxwell Titan X occupancy / coalescing / cache
    / scheduling / atomics models, the end-to-end GPU timing model, and the
    multicore Xeon model for the CPU baselines.
``repro.layout``
    §4.1's data-layout transformations: chunked view-major SVBs, uint8
    A-matrix quantisation, and memory access trace generation.
``repro.solvers``
    §6's generalization: coordinate descent for arbitrary weighted least
    squares with correlation-based grouping (the generalized checkerboard)
    and the parallel Gauss-Seidel analogy.
``repro.harness``
    One experiment driver per table and figure of the paper's evaluation.
``repro.resilience``
    Checkpoint/resume with bit-identical replay, the numerical-integrity
    sentinel (NaN/Inf guards + error-sinogram drift repair), and the
    fault-injection test harness.
``repro.service``
    Multi-job reconstruction service: priority queue with admission
    control, concurrent workers with per-job checkpoint/resume, a
    content-addressed result cache, and the ``python -m repro serve``
    directory intake.

Quickstart
----------
>>> from repro import (scaled_geometry, build_system_matrix, shepp_logan,
...                    simulate_scan, gpu_icd_reconstruct)
>>> geom = scaled_geometry(64)
>>> system = build_system_matrix(geom)
>>> scan = simulate_scan(shepp_logan(64), system, seed=0)
>>> result = gpu_icd_reconstruct(scan, system, max_equits=5, track_cost=False)
>>> result.image.shape
(64, 64)
"""

from repro.core import (
    GPUICDParams,
    GPUICDResult,
    ICDResult,
    Neighborhood,
    PSVICDResult,
    QGGMRFPrior,
    QuadraticPrior,
    RunHistory,
    SuperVoxelGrid,
    default_prior,
    golden_reconstruction,
    gpu_icd_reconstruct,
    icd_reconstruct,
    map_cost,
    psv_icd_reconstruct,
    rmse_hu,
)
from repro.ct import (
    ParallelBeamGeometry,
    ScanData,
    SystemMatrix,
    baggage_phantom,
    build_system_matrix,
    disk_phantom,
    ellipse_ensemble,
    fbp_reconstruct,
    forward_project,
    noiseless_scan,
    paper_geometry,
    scaled_geometry,
    shepp_logan,
    simulate_scan,
)
from repro.gpusim import (
    TITAN_X,
    CPUTimingModel,
    GPUKernelConfig,
    GPUTimingModel,
    occupancy,
)
from repro.observability import MetricsRecorder, NullRecorder
from repro.resilience import (
    Checkpoint,
    CheckpointManager,
    FaultInjector,
    IntegritySentinel,
    StateCorruptionError,
)
from repro.service import JobSpec, JobState, ReconstructionService

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # ct
    "ParallelBeamGeometry",
    "paper_geometry",
    "scaled_geometry",
    "SystemMatrix",
    "build_system_matrix",
    "ScanData",
    "simulate_scan",
    "noiseless_scan",
    "forward_project",
    "fbp_reconstruct",
    "shepp_logan",
    "baggage_phantom",
    "ellipse_ensemble",
    "disk_phantom",
    # core
    "QGGMRFPrior",
    "QuadraticPrior",
    "Neighborhood",
    "default_prior",
    "map_cost",
    "rmse_hu",
    "RunHistory",
    "ICDResult",
    "PSVICDResult",
    "GPUICDResult",
    "GPUICDParams",
    "SuperVoxelGrid",
    "icd_reconstruct",
    "psv_icd_reconstruct",
    "gpu_icd_reconstruct",
    "golden_reconstruction",
    # gpusim
    "TITAN_X",
    "occupancy",
    "GPUKernelConfig",
    "GPUTimingModel",
    "CPUTimingModel",
    # observability
    "MetricsRecorder",
    "NullRecorder",
    # resilience
    "Checkpoint",
    "CheckpointManager",
    "IntegritySentinel",
    "FaultInjector",
    "StateCorruptionError",
    # service
    "JobSpec",
    "JobState",
    "ReconstructionService",
]

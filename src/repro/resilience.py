"""Resilience: checkpoint/resume, numerical-integrity sentinel, fault injection.

The ICD core maintains the error sinogram ``e = y - Ax`` *incrementally*
across thousands of SuperVoxel updates (Alg. 1/3).  That makes long runs
fragile in two distinct ways:

* a killed process loses hours of convergence — there is no way to restart
  from iteration *i* unless the full driver state was persisted;
* a single NaN, poisoned entry, or dropped wave silently corrupts every
  subsequent theta1/theta2 — the run keeps going and diverges without a
  single error being raised.

This module addresses both (DESIGN.md §11):

:class:`CheckpointManager`
    Atomically persists full resumable run state — image ``x``, error
    sinogram ``e``, iteration counters, the RNG's bit-generator state, the
    :class:`~repro.core.selection.SVSelector` update-amount state, the
    :class:`~repro.core.convergence.RunHistory`, and metrics counters — as
    a checksummed container written via temp-file + ``os.replace``, keeping
    the last ``keep`` checkpoints.  A run killed at any point and resumed
    via ``resume_from=`` is **bit-identical** to an uninterrupted run, for
    every driver, kernel flavor, and execution backend, because everything
    the iteration loop consumes (including the RNG stream position) is
    restored exactly.

:class:`IntegritySentinel`
    Per-iteration state guards threaded into all three drivers: NaN/Inf
    boundary checks on ``x`` and ``e``, plus a periodic drift check that
    recomputes ``y - Ax`` from scratch, records the drift, and refreshes
    ``e`` in place when it exceeds a tolerance.  Corruption raises the
    typed :class:`StateCorruptionError`; when checkpointing is active the
    driver instead rolls back to the last valid checkpoint and replays.

:class:`FaultInjector`
    A seeded test harness that schedules deterministic faults — poisoning
    single voxels or sinogram entries mid-run, SIGKILLing the process at a
    chosen iteration, crashing/stalling backend workers, and truncating or
    bit-flipping checkpoint files — so every recovery path above is
    exercised by tests rather than trusted on faith.

All of it is **disabled by default**: drivers constructed without
``checkpoint=`` / ``resume_from=`` / ``sentinel=`` run byte-for-byte the
same loop as before, and an enabled checkpoint path never perturbs
iterates (it only *reads* state at iteration boundaries).
"""

from __future__ import annotations

import hashlib
import io as _stdio
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.convergence import IterationRecord, RunHistory
from repro.io import CorruptFileError
from repro.observability import as_recorder

__all__ = [
    "ResilienceError",
    "StateCorruptionError",
    "CheckpointError",
    "CorruptCheckpointError",
    "Checkpoint",
    "CheckpointManager",
    "IntegritySentinel",
    "FaultInjector",
    "ResilienceHooks",
]


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------
class ResilienceError(RuntimeError):
    """Base class for resilience-layer failures."""


class StateCorruptionError(ResilienceError):
    """The in-memory reconstruction state failed an integrity check.

    Raised by :class:`IntegritySentinel` when ``x`` or ``e`` contains
    non-finite values (or, with a strict tolerance, when the incrementally
    maintained error sinogram has drifted beyond repair).  Drivers with an
    active :class:`CheckpointManager` catch this and roll back to the last
    valid checkpoint instead of letting the run silently diverge.
    """


class CheckpointError(ResilienceError):
    """A checkpoint cannot be used (wrong driver, wrong shapes, no file)."""


class CorruptCheckpointError(CheckpointError, CorruptFileError):
    """A checkpoint file is truncated, bit-flipped, or otherwise invalid.

    Also a :class:`repro.io.CorruptFileError`, so callers can treat all
    on-disk corruption uniformly.
    """


# ----------------------------------------------------------------------
# RNG state plumbing
# ----------------------------------------------------------------------
def _jsonify(obj: Any) -> Any:
    """Recursively convert a bit-generator state dict to JSON-safe types."""
    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.integer):
        return int(obj)
    return obj


def _unjsonify(obj: Any) -> Any:
    """Inverse of :func:`_jsonify`."""
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.array(obj["__ndarray__"], dtype=obj["dtype"])
        return {k: _unjsonify(v) for k, v in obj.items()}
    return obj


def capture_rng_state(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state (JSON-serialisable)."""
    return _jsonify(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Return a generator positioned exactly at ``state``.

    When ``rng``'s bit generator matches the checkpointed type the state is
    restored *in place* (so drivers holding references keep working);
    otherwise a fresh generator of the checkpointed type is built.
    """
    state = _unjsonify(state)
    name = state.get("bit_generator")
    if rng.bit_generator.state.get("bit_generator") == name:
        rng.bit_generator.state = state
        return rng
    cls = getattr(np.random, str(name), None)
    if cls is None:
        raise CheckpointError(f"checkpoint uses unknown bit generator {name!r}")
    bg = cls()
    bg.state = state
    return np.random.Generator(bg)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
_CKPT_MAGIC = b"RPCKPT01"
_CKPT_FORMAT = "repro-ckpt-v1"


def _history_to_json(history: RunHistory) -> str:
    return json.dumps(
        {
            "records": [
                {
                    "iteration": r.iteration,
                    "equits": r.equits,
                    "cost": r.cost,
                    "rmse": r.rmse,
                    "updates": r.updates,
                    "svs_updated": r.svs_updated,
                }
                for r in history.records
            ],
            "converged_equits": history.converged_equits,
            "converged_iteration": history.converged_iteration,
            "converged_threshold_hu": history.converged_threshold_hu,
        }
    )


def _history_from_json(raw: str) -> RunHistory:
    doc = json.loads(raw)
    history = RunHistory()
    for r in doc["records"]:
        history.append(IterationRecord(**r))
    history.converged_equits = doc["converged_equits"]
    history.converged_iteration = doc["converged_iteration"]
    history.converged_threshold_hu = doc["converged_threshold_hu"]
    return history


@dataclass
class Checkpoint:
    """Full resumable state of a reconstruction run at an iteration boundary.

    Captured *after* iteration ``iteration`` completed (history record
    appended, RNG stream advanced past all of that iteration's draws), so a
    resumed run continues with iteration ``iteration + 1`` and consumes the
    exact same random stream an uninterrupted run would.
    """

    driver: str  # "icd" | "psv_icd" | "gpu_icd"
    iteration: int
    total_updates: int
    x: np.ndarray  # flat image
    e: np.ndarray  # flat error sinogram
    rng_state: dict
    history: RunHistory
    update_amounts: np.ndarray | None = None  # SVSelector state (SV drivers)
    counters: dict[str, float] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Serialise to the checksummed container format."""
        payload = {
            "format": np.array(_CKPT_FORMAT),
            "driver": np.array(self.driver),
            "iteration": np.array(int(self.iteration), dtype=np.int64),
            "total_updates": np.array(int(self.total_updates), dtype=np.int64),
            "x": np.asarray(self.x, dtype=np.float64),
            "e": np.asarray(self.e, dtype=np.float64),
            "rng_state": np.array(json.dumps(self.rng_state)),
            "history": np.array(_history_to_json(self.history)),
            "counters": np.array(json.dumps(self.counters)),
            "meta": np.array(json.dumps(self.meta)),
        }
        if self.update_amounts is not None:
            payload["update_amounts"] = np.asarray(self.update_amounts, dtype=np.float64)
        buf = _stdio.BytesIO()
        np.savez(buf, **payload)
        body = buf.getvalue()
        return _CKPT_MAGIC + hashlib.sha256(body).digest() + body

    @classmethod
    def from_bytes(cls, raw: bytes, *, source: str = "<bytes>") -> "Checkpoint":
        """Parse and checksum-verify a container produced by :meth:`to_bytes`."""
        header = len(_CKPT_MAGIC) + hashlib.sha256().digest_size
        if len(raw) < header or raw[: len(_CKPT_MAGIC)] != _CKPT_MAGIC:
            raise CorruptCheckpointError(f"{source}: not a repro checkpoint (bad magic)")
        digest = raw[len(_CKPT_MAGIC) : header]
        body = raw[header:]
        if hashlib.sha256(body).digest() != digest:
            raise CorruptCheckpointError(
                f"{source}: checksum mismatch (truncated or corrupted)"
            )
        try:
            with np.load(_stdio.BytesIO(body), allow_pickle=False) as data:
                fmt = str(data["format"])
                if fmt != _CKPT_FORMAT:
                    raise CorruptCheckpointError(
                        f"{source}: unknown checkpoint format {fmt!r}"
                    )
                return cls(
                    driver=str(data["driver"]),
                    iteration=int(data["iteration"]),
                    total_updates=int(data["total_updates"]),
                    x=np.asarray(data["x"], dtype=np.float64),
                    e=np.asarray(data["e"], dtype=np.float64),
                    rng_state=json.loads(str(data["rng_state"])),
                    history=_history_from_json(str(data["history"])),
                    update_amounts=(
                        np.asarray(data["update_amounts"], dtype=np.float64)
                        if "update_amounts" in data
                        else None
                    ),
                    counters=json.loads(str(data["counters"])),
                    meta=json.loads(str(data["meta"])),
                )
        except CorruptCheckpointError:
            raise
        except Exception as exc:  # zip/zlib/json/key errors from a mangled body
            raise CorruptCheckpointError(f"{source}: unreadable payload ({exc})") from exc


class CheckpointManager:
    """Rotating, atomic, checksummed checkpoint store for one run.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created on first save).  One run per
        directory; files are named ``ckpt-<iteration:08d>.ckpt``.
    keep:
        How many most-recent checkpoints to retain (older ones are deleted
        after each successful save).  Keeping more than one matters: if the
        *latest* file is later found corrupt, :meth:`load_latest` falls
        back to the next-newest valid one.
    """

    def __init__(self, directory: str | Path, *, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)
        #: corrupt files skipped by :meth:`load_latest` (for tests/metrics).
        self.corrupt_skipped = 0

    # -- paths ----------------------------------------------------------
    def path_for(self, iteration: int) -> Path:
        """The file a checkpoint of ``iteration`` is stored at."""
        return self.directory / f"ckpt-{int(iteration):08d}.ckpt"

    def paths(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt-*.ckpt"))

    # -- save -----------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> Path:
        """Atomically persist ``checkpoint`` and rotate old files.

        The container (magic + sha256 + npz payload) is written to a temp
        file in the target directory, fsynced, then moved into place with
        ``os.replace`` — a crash mid-save leaves the previous checkpoints
        untouched and at worst an ignorable temp file.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path_for(checkpoint.iteration)
        tmp = final.with_name(f".{final.name}.tmp-{os.getpid()}")
        raw = checkpoint.to_bytes()
        try:
            with open(tmp, "wb") as f:
                f.write(raw)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, final)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self._rotate()
        return final

    def _rotate(self) -> None:
        for stale in self.paths()[: -self.keep]:
            stale.unlink(missing_ok=True)

    # -- load -----------------------------------------------------------
    def load(self, path: str | Path) -> Checkpoint:
        """Load and verify one checkpoint file."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise
        except OSError as exc:
            raise CorruptCheckpointError(f"{path}: unreadable ({exc})") from exc
        return Checkpoint.from_bytes(raw, source=str(path))

    def load_latest(self) -> Checkpoint | None:
        """The newest checkpoint that passes verification, or None.

        Corrupt files (truncated, bit-flipped, wrong magic) are skipped —
        and counted in :attr:`corrupt_skipped` — so a torn or poisoned
        latest file degrades to the previous checkpoint instead of killing
        the resume.
        """
        for path in reversed(self.paths()):
            try:
                return self.load(path)
            except CorruptCheckpointError:
                self.corrupt_skipped += 1
        return None


# ----------------------------------------------------------------------
# Fault injection (test harness)
# ----------------------------------------------------------------------
@dataclass
class _ScheduledFault:
    kind: str  # "poison_voxel" | "poison_sinogram" | "kill"
    at_iteration: int
    index: int | None = None
    value: float = float("nan")
    sig: int = signal.SIGKILL
    fired: bool = False


class FaultInjector:
    """Seeded, deterministic fault scheduler for resilience tests.

    Faults are scheduled up front and fire exactly once when the run
    reaches the given iteration.  The injector plugs into two places:

    * :class:`IntegritySentinel` calls :meth:`on_iteration` at every
      iteration boundary — this is where voxel/sinogram poisoning and
      process kills fire;
    * the execution backends accept :meth:`worker_fault` specs (crash or
      stall selected SVs inside pool workers) via their
      ``fault_injection`` argument.

    File-corruption helpers (:meth:`truncate_file`, :meth:`corrupt_file`)
    mangle checkpoint/scan files on disk to exercise the
    :class:`CorruptCheckpointError` / rollback paths.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        self._scheduled: list[_ScheduledFault] = []
        #: human-readable record of every fault that actually fired.
        self.log: list[str] = []

    # -- scheduling -----------------------------------------------------
    def poison_voxel(
        self, at_iteration: int, *, index: int | None = None, value: float = float("nan")
    ) -> "FaultInjector":
        """Overwrite one image voxel with ``value`` after ``at_iteration``."""
        self._scheduled.append(
            _ScheduledFault("poison_voxel", int(at_iteration), index, float(value))
        )
        return self

    def poison_sinogram(
        self, at_iteration: int, *, index: int | None = None, value: float = float("nan")
    ) -> "FaultInjector":
        """Overwrite one error-sinogram entry with ``value`` after ``at_iteration``."""
        self._scheduled.append(
            _ScheduledFault("poison_sinogram", int(at_iteration), index, float(value))
        )
        return self

    def kill_at(self, at_iteration: int, *, sig: int = signal.SIGKILL) -> "FaultInjector":
        """Send ``sig`` to the current process after ``at_iteration``.

        With the default SIGKILL nothing — no ``finally``, no atexit — runs
        afterwards, which is exactly the crash mode checkpointing must
        survive.
        """
        self._scheduled.append(
            _ScheduledFault("kill", int(at_iteration), sig=int(sig))
        )
        return self

    # -- firing (called by the sentinel) --------------------------------
    def on_iteration(self, iteration: int, x: np.ndarray, e: np.ndarray) -> bool:
        """Fire any faults scheduled for ``iteration``; True if state changed."""
        poisoned = False
        for fault in self._scheduled:
            if fault.fired or fault.at_iteration != iteration:
                continue
            fault.fired = True
            if fault.kind == "poison_voxel":
                idx = (
                    int(self.rng.integers(0, x.size))
                    if fault.index is None
                    else int(fault.index)
                )
                x[idx] = fault.value
                self.log.append(f"iteration {iteration}: poisoned voxel {idx} = {fault.value}")
                poisoned = True
            elif fault.kind == "poison_sinogram":
                idx = (
                    int(self.rng.integers(0, e.size))
                    if fault.index is None
                    else int(fault.index)
                )
                e[idx] = fault.value
                self.log.append(
                    f"iteration {iteration}: poisoned sinogram entry {idx} = {fault.value}"
                )
                poisoned = True
            elif fault.kind == "kill":
                self.log.append(f"iteration {iteration}: kill signal {fault.sig}")
                os.kill(os.getpid(), fault.sig)
        return poisoned

    # -- backend worker faults ------------------------------------------
    @staticmethod
    def worker_fault(
        mode: str, sv_indices, *, stall_seconds: float = 5.0
    ) -> tuple[str, tuple[int, ...], float]:
        """A worker-fault spec for the execution backends.

        ``mode`` is ``"crash"`` (the worker dies/raises while processing a
        listed SV) or ``"stall"`` (it sleeps ``stall_seconds``, tripping
        the wave timeout).  Pass the returned tuple as the backends'
        ``fault_injection`` argument.
        """
        if mode not in ("crash", "stall"):
            raise ValueError(f"mode must be 'crash' or 'stall', got {mode!r}")
        return (mode, tuple(int(s) for s in sv_indices), float(stall_seconds))

    # -- on-disk corruption ---------------------------------------------
    @staticmethod
    def truncate_file(path: str | Path, *, keep_bytes: int = 64) -> None:
        """Truncate ``path`` to ``keep_bytes`` (a torn write / full disk)."""
        path = Path(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: int(keep_bytes)])

    def corrupt_file(self, path: str | Path, *, n_bytes: int = 8) -> None:
        """Flip ``n_bytes`` randomly chosen bytes of ``path`` in place."""
        path = Path(path)
        raw = bytearray(path.read_bytes())
        if not raw:
            return
        for pos in self.rng.integers(0, len(raw), size=int(n_bytes)):
            raw[int(pos)] ^= 0xFF
        path.write_bytes(bytes(raw))


# ----------------------------------------------------------------------
# Integrity sentinel
# ----------------------------------------------------------------------
class IntegritySentinel:
    """Per-iteration numerical-integrity guards for the ICD drivers.

    Parameters
    ----------
    check_every:
        Run the NaN/Inf boundary guards on ``x`` and ``e`` every this many
        iterations (1 = every iteration; the check is two ``np.isfinite``
        reductions, far cheaper than an iteration).
    drift_every:
        Every this many iterations, recompute ``y - Ax`` from scratch (one
        forward projection) and compare against the incrementally
        maintained ``e``.  0 (default) disables drift checking.
    drift_tol:
        Max-abs drift (in line-integral units) above which ``e`` is
        refreshed in place from the recomputation.  The refresh is recorded
        as a ``drift_refresh`` span and ``sentinel.refreshes`` counter —
        iterates after a refresh legitimately differ from an unrefreshed
        run (the refreshed ``e`` is the *more* correct one).
    fault_injector:
        Optional :class:`FaultInjector` whose scheduled faults fire at each
        iteration boundary before the guards run (test harness only).

    The sentinel never changes iterates unless a drift refresh actually
    fires; the guards themselves only read.
    """

    def __init__(
        self,
        *,
        check_every: int = 1,
        drift_every: int = 0,
        drift_tol: float = 1e-6,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if drift_every < 0:
            raise ValueError(f"drift_every must be >= 0, got {drift_every}")
        if not drift_tol > 0:
            raise ValueError(f"drift_tol must be > 0, got {drift_tol}")
        self.check_every = int(check_every)
        self.drift_every = int(drift_every)
        self.drift_tol = float(drift_tol)
        self.fault_injector = fault_injector
        #: drift observed at the most recent / worst drift check.
        self.last_drift: float | None = None
        self.max_drift: float = 0.0
        #: how many times ``e`` was refreshed from scratch.
        self.refreshes = 0

    def check(self, iteration: int, x: np.ndarray, e: np.ndarray, updater, metrics=None) -> None:
        """Run the guards for one completed iteration.

        Raises :class:`StateCorruptionError` on non-finite state; refreshes
        ``e`` in place when drift exceeds the tolerance.
        """
        rec = as_recorder(metrics)
        if self.fault_injector is not None:
            self.fault_injector.on_iteration(iteration, x, e)
        if iteration % self.check_every == 0:
            rec.count("sentinel.checks", 1)
            self._guard_finite("image x", x, iteration)
            self._guard_finite("error sinogram e", e, iteration)
        if self.drift_every and iteration % self.drift_every == 0:
            with rec.span("drift_check", iteration=iteration):
                exact = updater.initial_error(x)
                drift = float(np.max(np.abs(e - exact))) if e.size else 0.0
            rec.count("sentinel.drift_checks", 1)
            self.last_drift = drift
            self.max_drift = max(self.max_drift, drift)
            if drift > self.drift_tol:
                with rec.span("drift_refresh", iteration=iteration, drift=drift):
                    e[:] = exact
                rec.count("sentinel.refreshes", 1)
                self.refreshes += 1

    @staticmethod
    def _guard_finite(name: str, array: np.ndarray, iteration: int) -> None:
        finite = np.isfinite(array)
        if not finite.all():
            bad = int(np.flatnonzero(~finite.ravel())[0])
            raise StateCorruptionError(
                f"{name} is non-finite at flat index {bad} after iteration "
                f"{iteration} (value {array.ravel()[bad]!r}); the incremental "
                f"state is corrupt"
            )


# ----------------------------------------------------------------------
# Driver glue
# ----------------------------------------------------------------------
class ResilienceHooks:
    """Checkpoint/resume/sentinel glue shared by the three ICD drivers.

    A driver constructs one of these when any resilience kwarg is given and
    calls two methods: :meth:`resume_state` once before the loop (returns
    the restored state, or None for a fresh start) and
    :meth:`after_iteration` at each iteration boundary (runs the sentinel,
    handles rollback, saves checkpoints on cadence).

    Rollback semantics: when the sentinel raises
    :class:`StateCorruptionError` and a valid checkpoint exists, state is
    restored *in place* (``x``/``e``/history/selector/RNG) and the driver
    replays from the checkpointed iteration — at most ``max_rollbacks``
    times, after which the corruption error propagates.
    """

    def __init__(
        self,
        *,
        driver: str,
        checkpoint: "CheckpointManager | str | Path | None" = None,
        checkpoint_every: int = 1,
        resume_from: "Checkpoint | str | Path | None" = None,
        sentinel: IntegritySentinel | None = None,
        metrics=None,
        max_rollbacks: int = 3,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.driver = driver
        self.manager: CheckpointManager | None
        if checkpoint is None:
            self.manager = None
        elif isinstance(checkpoint, CheckpointManager):
            self.manager = checkpoint
        else:
            self.manager = CheckpointManager(checkpoint)
        self.checkpoint_every = int(checkpoint_every)
        self.resume_from = resume_from
        self.sentinel = sentinel
        self.rec = as_recorder(metrics)
        self.max_rollbacks = int(max_rollbacks)
        self.rollbacks = 0

    # -- resume ---------------------------------------------------------
    def resume_state(self) -> Checkpoint | None:
        """Resolve ``resume_from`` to a verified :class:`Checkpoint`.

        Accepts a :class:`Checkpoint` object, a checkpoint file path, a
        checkpoint *directory* (its newest valid file is used), or the
        string ``"latest"`` (newest valid file of the attached manager;
        None — a fresh start — when the manager has no checkpoints yet).
        """
        src = self.resume_from
        if src is None:
            return None
        if isinstance(src, Checkpoint):
            ckpt = src
        elif src == "latest":
            if self.manager is None:
                raise CheckpointError("resume_from='latest' requires checkpoint=")
            ckpt = self.manager.load_latest()
            if ckpt is None:
                return None  # nothing saved yet: a fresh start, by design
        else:
            path = Path(src)
            if path.is_dir():
                ckpt = CheckpointManager(path).load_latest()
                if ckpt is None:
                    raise CheckpointError(f"{path}: no valid checkpoint found")
            else:
                manager = self.manager if self.manager is not None else CheckpointManager(path.parent)
                ckpt = manager.load(path)
        if ckpt.driver != self.driver:
            raise CheckpointError(
                f"checkpoint was written by driver {ckpt.driver!r}, "
                f"cannot resume {self.driver!r} from it"
            )
        self.rec.count("checkpoint.resumes", 1)
        return ckpt

    def validate_shapes(self, ckpt: Checkpoint, *, n_voxels: int, n_measurements: int) -> None:
        """Reject a checkpoint from a different geometry before any state copies."""
        if ckpt.x.size != n_voxels or ckpt.e.size != n_measurements:
            raise CheckpointError(
                f"checkpoint geometry mismatch: x has {ckpt.x.size} voxels "
                f"(driver expects {n_voxels}), e has {ckpt.e.size} entries "
                f"(driver expects {n_measurements})"
            )

    def apply_resume(
        self,
        ckpt: Checkpoint,
        *,
        rng: np.random.Generator,
        selector=None,
    ) -> tuple[np.ndarray, np.ndarray, np.random.Generator, RunHistory, int, int]:
        """Materialise a checkpoint into fresh driver state.

        Returns ``(x, e, rng, history, iteration, total_updates)``; the
        arrays are private copies, the RNG is positioned exactly where the
        checkpointed run left it, the selector's update-amount state is
        restored in place, and the checkpointed counters are merged into
        the recorder (so resumed runs report whole-run totals).
        """
        x = np.array(ckpt.x, dtype=np.float64, copy=True)
        e = np.array(ckpt.e, dtype=np.float64, copy=True)
        rng = restore_rng_state(rng, ckpt.rng_state)
        history = _history_from_json(_history_to_json(ckpt.history))  # private copy
        if selector is not None and ckpt.update_amounts is not None:
            selector.update_amounts[:] = ckpt.update_amounts
        if self.rec.enabled and ckpt.counters:
            self.rec.merge_counters(ckpt.counters)
        return x, e, rng, history, ckpt.iteration, ckpt.total_updates

    # -- per-iteration --------------------------------------------------
    def after_iteration(
        self,
        *,
        iteration: int,
        total_updates: int,
        x: np.ndarray,
        e: np.ndarray,
        rng: np.random.Generator,
        history: RunHistory,
        updater,
        selector=None,
    ) -> tuple[int, int] | None:
        """Sentinel check + cadenced checkpoint save for one iteration.

        Returns None normally.  On detected corruption with a valid
        checkpoint available, restores state in place and returns the
        ``(iteration, total_updates)`` to continue from; without a usable
        checkpoint (or past ``max_rollbacks``) the
        :class:`StateCorruptionError` propagates.
        """
        if self.sentinel is not None:
            try:
                self.sentinel.check(iteration, x, e, updater, metrics=self.rec)
            except StateCorruptionError:
                ckpt = self.manager.load_latest() if self.manager is not None else None
                if ckpt is None or self.rollbacks >= self.max_rollbacks:
                    raise
                self.rollbacks += 1
                self.rec.count("resilience.rollbacks", 1)
                with self.rec.span("rollback", to_iteration=ckpt.iteration):
                    self._restore_inplace(ckpt, x, e, rng, history, selector)
                return ckpt.iteration, ckpt.total_updates
        if self.manager is not None and iteration % self.checkpoint_every == 0:
            with self.rec.span("checkpoint_save", iteration=iteration) as span:
                saved = self.manager.save(
                    self._build(iteration, total_updates, x, e, rng, history, selector)
                )
                if saved is None:
                    # A degrading manager suppressed the save (disk fault).
                    # Mark the span so progress recorders don't report a
                    # checkpoint that never hit the disk.
                    meta = getattr(span, "meta", None)
                    if meta is not None:
                        meta["suppressed"] = True
            if saved is None:
                self.rec.count("checkpoint.saves_suppressed", 1)
            else:
                self.rec.count("checkpoint.saves", 1)
        return None

    # -- internals ------------------------------------------------------
    def _build(self, iteration, total_updates, x, e, rng, history, selector) -> Checkpoint:
        counters = dict(self.rec.counters) if self.rec.enabled else {}
        return Checkpoint(
            driver=self.driver,
            iteration=int(iteration),
            total_updates=int(total_updates),
            x=np.array(x, dtype=np.float64, copy=True),
            e=np.array(e, dtype=np.float64, copy=True),
            rng_state=capture_rng_state(rng),
            history=_history_from_json(_history_to_json(history)),  # deep copy
            update_amounts=(
                None if selector is None else np.array(selector.update_amounts, copy=True)
            ),
            counters=counters,
            meta={"saved_at": time.time()},
        )

    def _restore_inplace(self, ckpt: Checkpoint, x, e, rng, history, selector) -> None:
        x[:] = ckpt.x
        e[:] = ckpt.e
        restore_rng_state(rng, ckpt.rng_state)
        history.records[:] = list(ckpt.history.records)
        history.converged_equits = ckpt.history.converged_equits
        history.converged_iteration = ckpt.history.converged_iteration
        history.converged_threshold_hu = ckpt.history.converged_threshold_hu
        if selector is not None and ckpt.update_amounts is not None:
            selector.update_amounts[:] = ckpt.update_amounts

"""Multi-job reconstruction service: queue, scheduler, workers, result cache.

The paper's pipeline reconstructs one scan per process; this package turns
the three drivers into a *service* (DESIGN.md §12): jobs are submitted with
priorities, admitted against a bounded queue, executed concurrently on a
worker pool with per-job checkpoint/resume, deduplicated through a
content-addressed result cache, and observable through status snapshots,
progress streams, and ``service.*`` counters.

Entry points: :class:`ReconstructionService` (in-process),
:class:`DirectoryService` / ``python -m repro serve`` (file-based intake),
:class:`HttpGateway` / ``python -m repro serve-http`` (REST over
``ThreadingHTTPServer``, exercised by :func:`repro.service.loadgen.run_load`
/ ``python -m repro loadtest``).
"""

from repro.service.cache import CachedResult, ResultCache, cache_key
from repro.service.chaos import (
    ChaosPlan,
    CampaignResult,
    run_campaign,
    run_campaigns,
    summarize,
)
from repro.service.faults import (
    DegradableWriter,
    DegradingCheckpointManager,
    RetryPolicy,
    arm_disk_fault,
    check_disk_fault,
    disarm_disk_fault,
    next_backoff,
)
from repro.service.http import HttpGateway
from repro.service.intake import (
    DirectoryService,
    read_status,
    request_cancel,
    write_job_spec,
)
from repro.service.jobs import (
    DRIVERS,
    TERMINAL_STATES,
    EvictedJobError,
    Job,
    JobCancelledError,
    JobDeadlineError,
    JobEvent,
    JobFailedError,
    JobSpec,
    JobState,
    JobStateError,
    ResultPersistError,
    ServiceError,
    UnknownJobError,
)
from repro.service.loadgen import JobRecord, LoadReport, run_load
from repro.service.progress import ProgressEvent, ProgressRecorder
from repro.service.queue import AdmissionError, JobQueue, QueueClosedError
from repro.service.reaper import JobReaper
from repro.service.runner import clear_system_cache, run_job, system_for
from repro.service.scheduler import WORKER_MODELS, Scheduler
from repro.service.service import ReconstructionService

__all__ = [
    "DRIVERS",
    "TERMINAL_STATES",
    "ServiceError",
    "JobStateError",
    "JobFailedError",
    "JobCancelledError",
    "JobDeadlineError",
    "ResultPersistError",
    "UnknownJobError",
    "EvictedJobError",
    "AdmissionError",
    "QueueClosedError",
    "JobState",
    "JobEvent",
    "JobSpec",
    "Job",
    "JobQueue",
    "cache_key",
    "CachedResult",
    "ResultCache",
    "ProgressEvent",
    "ProgressRecorder",
    "system_for",
    "clear_system_cache",
    "run_job",
    "Scheduler",
    "WORKER_MODELS",
    "JobReaper",
    "ReconstructionService",
    "HttpGateway",
    "JobRecord",
    "LoadReport",
    "run_load",
    "DirectoryService",
    "write_job_spec",
    "read_status",
    "request_cancel",
    "next_backoff",
    "RetryPolicy",
    "DegradableWriter",
    "DegradingCheckpointManager",
    "check_disk_fault",
    "arm_disk_fault",
    "disarm_disk_fault",
    "ChaosPlan",
    "CampaignResult",
    "run_campaign",
    "run_campaigns",
    "summarize",
]

"""End-to-end chaos campaigns against the reconstruction service.

A *campaign* boots a real :class:`~repro.service.service.ReconstructionService`
(plus its :class:`~repro.service.http.HttpGateway`), submits a seeded random
mix of clean and fault-injected jobs, drains, and then checks **global
invariants** — the properties that must hold no matter which faults fired:

* every accepted job reaches exactly one terminal state (the only tolerated
  exception: a job accepted in the close race that stays PENDING after the
  service shut down);
* every DONE result is **bit-identical** to an uninterrupted single-process
  reference reconstruction of the same spec — kills, hangs, checkpoint-disk
  faults, and dedup hits must not perturb iterates;
* injected faults leave their fingerprints: a SIGKILLed worker logs
  ``WORKER_CRASHED``, a SIGSTOPped one ``WORKER_HUNG``
  (``reason=heartbeat_timeout``), a checkpoint-disk fault
  ``CHECKPOINT_DEGRADED``, and an unwritable *result* directory is the one
  fault that is allowed (required) to end FAILED, with
  ``ResultPersistError`` in the error;
* the gateway never answers 5xx on the paths a correct client exercises
  (503 + ``Retry-After`` during the close race is sanctioned backpressure;
  result fetches are only issued for DONE jobs);
* TTL eviction leaves tombstones, not holes: an evicted id answers
  **410 Gone**, and the tombstone set stays bounded.

Fault vocabulary (per job, chosen by the campaign's seeded RNG):

==============  ========================================================
kind            injection
==============  ========================================================
``none``        clean job (submitted through the HTTP gateway)
``dup``         byte-identical resubmission of the campaign's first job
                (exercises the content-addressed cache / dedup path)
``cancel``      cancel shortly after submission (either outcome —
                CANCELLED or a DONE photo-finish — is legal)
``ckpt_fault``  ``.disk-fault`` sentinel armed in the job's checkpoint
                directory pre-submit, disarmed on its first iteration
                event → checkpoint writes degrade, job still finishes
``cache_fault`` sentinel armed on the shared cache directory for the
                whole campaign → disk-tier persists fail, dedup falls
                back to memory, jobs still finish
``kill``        ``fault={"kill_at_iteration": 2}`` — SIGKILL mid-run,
                resume from checkpoint (process model only)
``hang``        SIGSTOP instead of SIGKILL — worker goes silent, the
                heartbeat supervisor must detect and kill it
                (process model only)
``result_out``  sentinel armed on the job's *result* directory (never
                cleared) → the worker's result persist fails after
                retries; the job must FAIL typed, not hang or crash
                the service (process model only)
==============  ========================================================

Campaign-level injections (seeded coin flips, after the drain): TTL
eviction via ``evict_terminal(older_than_s=0)`` with an HTTP 410 probe,
and a queue-close race — submissions fired concurrently with
``service.close()`` must either land or fail with the typed
queue-closed/service-closed errors, never anything else.

``python -m repro chaos --campaigns N --seed S`` runs N campaigns and
exits non-zero on any violation; ``benchmarks/bench_chaos.py`` times the
same harness for BENCH_9.json.  Everything here is deterministic given
the seed *except* scheduling interleavings — which is the point: the
invariants must hold across interleavings, and CI runs many seeds.
"""

from __future__ import annotations

import json
import random
import signal
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.ct import build_system_matrix, scaled_geometry, shepp_logan, simulate_scan
from repro.io import save_scan
from repro.service.faults import arm_disk_fault, disarm_disk_fault
from repro.service.http import HttpGateway
from repro.service.jobs import JobSpec, JobState
from repro.service.queue import QueueClosedError
from repro.service.runner import run_job
from repro.service.service import ReconstructionService

__all__ = [
    "FAULT_KINDS",
    "ChaosJob",
    "ChaosPlan",
    "CampaignResult",
    "run_campaign",
    "run_campaigns",
    "summarize",
]

#: Fault kinds available per worker model.  Thread workers share the
#: service process, so kill/hang/result faults (which need a separate
#: victim process) are process-model only.
FAULT_KINDS = {
    "thread": ("none", "none", "dup", "cancel", "ckpt_fault", "cache_fault"),
    "process": (
        "none",
        "dup",
        "cancel",
        "ckpt_fault",
        "cache_fault",
        "kill",
        "hang",
        "result_out",
    ),
}

_TERMINAL_KINDS = frozenset(s.value for s in (JobState.DONE, JobState.FAILED, JobState.CANCELLED))

# Campaigns reuse one small scan (16^2, fixed seed) — chaos exercises the
# service's fault domains, not the numerics, and a shared scan lets the
# per-spec reference reconstructions amortise across every campaign.
_SCAN_LOCK = threading.Lock()
_SCAN = None
_REFERENCES: dict[str, np.ndarray] = {}


def _campaign_scan():
    global _SCAN
    with _SCAN_LOCK:
        if _SCAN is None:
            geom = scaled_geometry(16)
            _SCAN = simulate_scan(
                shepp_logan(16), build_system_matrix(geom), dose=1e5, seed=7
            )
        return _SCAN


def _reference_image(params: dict[str, Any]) -> np.ndarray:
    """Uninterrupted single-process reconstruction for ``params`` (cached)."""
    key = json.dumps(params, sort_keys=True)
    with _SCAN_LOCK:
        cached = _REFERENCES.get(key)
    if cached is not None:
        return cached
    with tempfile.TemporaryDirectory(prefix="chaos-ref-") as tmp:
        result = run_job(
            JobSpec(driver="icd", scan=_campaign_scan(), params=dict(params)),
            checkpoint_dir=Path(tmp) / "checkpoints",
        )
    image = np.array(result.image, copy=True)
    with _SCAN_LOCK:
        _REFERENCES.setdefault(key, image)
    return image


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosJob:
    """One planned submission: its spec ingredients plus the fault to arm."""

    index: int
    job_id: str
    kind: str
    params: dict[str, Any]
    fault: dict[str, Any] | None = None
    via_http: bool = False


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded campaign plan: the jobs plus the campaign-level coin flips."""

    seed: int
    worker_model: str
    jobs: tuple[ChaosJob, ...]
    evict_after_drain: bool
    close_race_submissions: int

    @classmethod
    def generate(
        cls, seed: int, *, worker_model: str = "thread", n_jobs: int = 6
    ) -> "ChaosPlan":
        """Deterministically expand ``seed`` into a full campaign plan.

        Job 0 is always clean — it is the dedup target and anchors the
        bit-identity baseline inside the campaign itself.
        """
        if worker_model not in FAULT_KINDS:
            raise ValueError(
                f"worker_model must be one of {sorted(FAULT_KINDS)}, got {worker_model!r}"
            )
        if n_jobs < 2:
            raise ValueError(f"n_jobs must be >= 2, got {n_jobs}")
        rng = random.Random(seed)
        kinds = FAULT_KINDS[worker_model]
        jobs: list[ChaosJob] = []
        for i in range(n_jobs):
            kind = "none" if i == 0 else rng.choice(kinds)
            # >= 3 iterations so kill/hang at iteration 2 always fires and
            # always leaves a checkpoint to resume from.
            params: dict[str, Any] = {
                "max_equits": float(rng.choice((3.0, 4.0))),
                "seed": rng.choice((0, 1, 2)),
                "track_cost": False,
            }
            fault = None
            if kind == "dup":
                params = dict(jobs[0].params)
            elif kind in ("kill", "hang", "ckpt_fault", "result_out"):
                # A faulted job whose params collide with an already-DONE
                # job is (correctly) served from the dedup cache and never
                # runs — its fault never fires.  Unique seed → unique
                # cache key → the injection is guaranteed to execute.
                params["seed"] = 100 + i
            if kind == "kill":
                fault = {"kill_at_iteration": 2}
            elif kind == "hang":
                fault = {"kill_at_iteration": 2, "signal": int(signal.SIGSTOP)}
            jobs.append(
                ChaosJob(
                    index=i,
                    job_id=f"chaos-{seed}-{i:02d}",
                    kind=kind,
                    params=params,
                    fault=fault,
                    # The gateway has no fault-spec field (faults are a
                    # test-only hook), and sentinel/cancel jobs need
                    # in-process callbacks — clean jobs go over HTTP so
                    # every campaign exercises the network edge too.
                    via_http=kind in ("none", "dup"),
                )
            )
        return cls(
            seed=seed,
            worker_model=worker_model,
            jobs=tuple(jobs),
            evict_after_drain=rng.random() < 0.5,
            close_race_submissions=rng.choice((0, 2, 3)),
        )


# ----------------------------------------------------------------------
# Campaign execution
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """What one campaign did and every invariant violation it found."""

    seed: int
    worker_model: str
    n_jobs: int
    duration_s: float = 0.0
    violations: list[str] = field(default_factory=list)
    job_states: dict[str, str] = field(default_factory=dict)
    kind_counts: dict[str, int] = field(default_factory=dict)
    http_codes: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "worker_model": self.worker_model,
            "n_jobs": self.n_jobs,
            "duration_s": round(self.duration_s, 3),
            "ok": self.ok,
            "violations": list(self.violations),
            "job_states": dict(self.job_states),
            "kind_counts": dict(self.kind_counts),
            "http_codes": dict(self.http_codes),
            "counters": dict(self.counters),
        }


def _http(
    base_url: str, method: str, path: str, body: dict | None = None, timeout: float = 30.0
) -> tuple[int, bytes]:
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        base_url.rstrip("/") + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, exc.read()


def run_campaign(
    plan: ChaosPlan,
    *,
    root: str | Path | None = None,
    drain_timeout_s: float = 180.0,
) -> CampaignResult:
    """Execute one campaign plan against a real service + gateway.

    Returns a :class:`CampaignResult`; ``result.ok`` is the verdict.  The
    campaign never raises for an invariant violation — violations are
    *data* (the CLI and CI turn them into exit codes) — but programming
    errors inside the harness itself do propagate.
    """
    res = CampaignResult(
        seed=plan.seed, worker_model=plan.worker_model, n_jobs=len(plan.jobs)
    )
    for planned in plan.jobs:
        res.kind_counts[planned.kind] = res.kind_counts.get(planned.kind, 0) + 1
    started = time.monotonic()
    tmp = None
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="chaos-")
        root = tmp.name
    root = Path(root)
    scan = _campaign_scan()
    scan_dir = root / "scans"
    scan_dir.mkdir(parents=True, exist_ok=True)
    save_scan(scan_dir / "scan.npz", scan)
    ckpt_root = root / "ckpts"
    cache_dir = root / "cache"

    def violate(msg: str) -> None:
        res.violations.append(msg)

    def checked_http(method: str, path: str, body: dict | None = None) -> tuple[int, bytes]:
        code, payload = _http(gw.url, method, path, body)
        res.http_codes[str(code)] = res.http_codes.get(str(code), 0) + 1
        if code >= 500:
            violate(f"gateway answered {code} on {method} {path}: {payload[:120]!r}")
        return code, payload

    service = ReconstructionService(
        n_workers=2,
        worker_model=plan.worker_model,
        max_restarts=3,
        # Tight enough that a SIGSTOPped worker is caught in-campaign,
        # loose enough that a CI-loaded box doesn't false-positive.
        heartbeat_timeout_s=1.0 if plan.worker_model == "process" else None,
        checkpoint_root=ckpt_root,
        cache_dir=cache_dir,
        checkpoint_every=1,
    )
    gw = HttpGateway(service, scan_root=scan_dir).start()
    cache_faulted = any(j.kind == "cache_fault" for j in plan.jobs)
    try:
        if cache_faulted:
            arm_disk_fault(cache_dir)
        for planned in plan.jobs:
            if planned.kind == "ckpt_fault":
                arm_disk_fault(ckpt_root / planned.job_id / "checkpoints")
            elif planned.kind == "result_out":
                arm_disk_fault(ckpt_root / planned.job_id)
            on_progress = None
            if planned.kind == "ckpt_fault":
                ckpt_dir = ckpt_root / planned.job_id / "checkpoints"

                # Checkpoint saves run *after* the iteration span closes
                # (ResilienceHooks.after_iteration), so iteration 1's
                # event precedes iteration 1's save: disarming from
                # iteration 2 guarantees the first save hits the fault
                # and a later save observes the recovery.
                def on_progress(event, _dir=ckpt_dir):
                    if event.kind == "iteration" and event.iteration >= 2:
                        disarm_disk_fault(_dir)

            if planned.via_http:
                code, payload = checked_http(
                    "POST",
                    "/jobs",
                    {
                        "driver": "icd",
                        "scan": "scan.npz",
                        "params": planned.params,
                        "job_id": planned.job_id,
                    },
                )
                if code != 201:
                    violate(
                        f"{planned.job_id} ({planned.kind}): HTTP submit -> {code}"
                    )
                    continue
            else:
                spec = JobSpec(
                    driver="icd",
                    scan=scan,
                    params=dict(planned.params),
                    job_id=planned.job_id,
                    fault=dict(planned.fault) if planned.fault else None,
                )
                service.submit(spec, on_progress=on_progress)
            if planned.kind == "cancel":
                service.cancel(planned.job_id)

        if not service.drain(timeout=drain_timeout_s):
            violate(f"drain did not finish within {drain_timeout_s:g}s")

        # -- per-job invariants ----------------------------------------
        for planned in plan.jobs:
            job = service.job(planned.job_id)
            res.job_states[planned.job_id] = job.state.value
            label = f"{planned.job_id} ({planned.kind})"
            if not job.terminal:
                violate(f"{label}: not terminal after drain ({job.state.value})")
                continue
            terminal_events = [e for e in job.events if e.kind in _TERMINAL_KINDS]
            if len(terminal_events) != 1:
                violate(
                    f"{label}: {len(terminal_events)} terminal events "
                    f"({[e.kind for e in terminal_events]})"
                )
            event_kinds = {e.kind for e in job.events}
            if planned.kind == "result_out":
                if job.state is not JobState.FAILED:
                    violate(f"{label}: expected FAILED, got {job.state.value}")
                elif "ResultPersistError" not in (job.error or ""):
                    violate(f"{label}: FAILED without typed error: {job.error!r}")
                continue
            if planned.kind == "cancel":
                if job.state not in (JobState.CANCELLED, JobState.DONE):
                    violate(f"{label}: expected CANCELLED/DONE, got {job.state.value}")
            elif job.state is not JobState.DONE:
                violate(
                    f"{label}: expected DONE, got {job.state.value} ({job.error!r})"
                )
            if planned.kind == "kill" and "WORKER_CRASHED" not in event_kinds:
                violate(f"{label}: SIGKILL left no WORKER_CRASHED event")
            if planned.kind == "hang":
                hung = [e for e in job.events if e.kind == "WORKER_HUNG"]
                if not hung:
                    violate(f"{label}: SIGSTOP left no WORKER_HUNG event")
                elif hung[0].detail.get("reason") != "heartbeat_timeout":
                    violate(f"{label}: WORKER_HUNG reason {hung[0].detail!r}")
            if planned.kind == "ckpt_fault" and "CHECKPOINT_DEGRADED" not in event_kinds:
                violate(f"{label}: disk fault left no CHECKPOINT_DEGRADED event")
            if job.state is JobState.DONE and job.result is not None:
                reference = _reference_image(planned.params)
                if not np.array_equal(np.asarray(job.result.image), reference):
                    violate(f"{label}: DONE image not bit-identical to reference")

        if cache_faulted and service.cache.disk_write_failures < 1:
            violate("cache_fault campaign recorded no cache disk_write_failures")

        # -- gateway reads: statuses, health, metrics ------------------
        for planned in plan.jobs:
            code, _ = checked_http("GET", f"/jobs/{planned.job_id}")
            if code != 200:
                violate(f"{planned.job_id}: status read -> {code}")
        done_http = [
            p
            for p in plan.jobs
            if res.job_states.get(p.job_id) == "DONE" and p.kind != "cancel"
        ]
        for planned in done_http[:2]:
            code, payload = checked_http("GET", f"/jobs/{planned.job_id}/result")
            if code != 200 or not payload:
                violate(f"{planned.job_id}: result fetch -> {code}, {len(payload)}B")
        code, payload = checked_http("GET", "/healthz")
        try:
            health = json.loads(payload)
        except ValueError:
            health = None
        if code != 200 or not isinstance(health, dict) or health.get("status") not in (
            "ok",
            "degraded",
        ):
            violate(f"healthz -> {code}: {payload[:120]!r}")
        code, _ = checked_http("GET", "/metrics")
        if code != 200:
            violate(f"metrics -> {code}")

        # -- campaign-level injections ---------------------------------
        if plan.evict_after_drain:
            evicted = service.evict_terminal(older_than_s=0.0)
            if evicted:
                code, _ = checked_http("GET", f"/jobs/{evicted[0]}")
                if code != 410:
                    violate(f"evicted id {evicted[0]} answered {code}, want 410")
        report = service.report()
        res.counters = {
            k: int(v)
            for k, v in report["counters"].items()
            if k.startswith("service.")
        }
        if res.counters.get("service.tombstones", 0) > 10_000:
            violate("tombstone set unbounded")

        # Close race: submissions concurrent with close() must land or
        # fail typed — never raise anything else, never corrupt state.
        race_errors: list[str] = []
        race_ids: list[str] = []

        def racer() -> None:
            for i in range(plan.close_race_submissions):
                spec = JobSpec(
                    driver="icd",
                    scan=scan,
                    params={"max_equits": 1.0, "seed": 0, "track_cost": False},
                    job_id=f"chaos-{plan.seed}-late-{i}",
                )
                try:
                    race_ids.append(service.submit(spec))
                except (QueueClosedError, RuntimeError):
                    pass
                except Exception as exc:  # noqa: BLE001 — the invariant
                    race_errors.append(f"close-race submit raised {exc!r}")

        racer_thread = threading.Thread(target=racer)
        racer_thread.start()
        service.close()
        racer_thread.join(timeout=30)
        res.violations.extend(race_errors)
        for job_id in race_ids:
            job = service.job(job_id)
            if not job.terminal and job.state is not JobState.PENDING:
                violate(
                    f"close-race job {job_id} neither terminal nor PENDING "
                    f"({job.state.value})"
                )
    finally:
        disarm_disk_fault(cache_dir)
        gw.close()
        service.close()
        if tmp is not None:
            tmp.cleanup()
    res.duration_s = time.monotonic() - started
    return res


def run_campaigns(
    campaigns: int,
    *,
    seed: int = 0,
    worker_models: tuple[str, ...] = ("thread", "process"),
    n_jobs: int = 6,
    progress: Callable[[str], None] | None = None,
) -> list[CampaignResult]:
    """Run ``campaigns`` seeded campaigns, alternating worker models.

    Campaign ``i`` uses seed ``seed + i`` and worker model
    ``worker_models[i % len(worker_models)]``, so one ``--campaigns 20``
    run covers both execution models across 20 distinct fault mixes.
    """
    if campaigns < 1:
        raise ValueError(f"campaigns must be >= 1, got {campaigns}")
    results: list[CampaignResult] = []
    for i in range(campaigns):
        model = worker_models[i % len(worker_models)]
        plan = ChaosPlan.generate(seed + i, worker_model=model, n_jobs=n_jobs)
        result = run_campaign(plan)
        results.append(result)
        if progress is not None:
            verdict = "ok" if result.ok else f"{len(result.violations)} VIOLATIONS"
            progress(
                f"campaign seed={plan.seed} model={model} "
                f"jobs={result.n_jobs} {result.duration_s:.2f}s -> {verdict}"
            )
    return results


def summarize(results: list[CampaignResult]) -> dict[str, Any]:
    """Aggregate campaign results into the CLI/CI report document."""
    violations = [v for r in results for v in r.violations]
    kind_counts: dict[str, int] = {}
    for r in results:
        for kind, n in r.kind_counts.items():
            kind_counts[kind] = kind_counts.get(kind, 0) + n
    return {
        "campaigns": len(results),
        "ok": not violations,
        "violations": violations,
        "total_jobs": sum(r.n_jobs for r in results),
        "kind_counts": kind_counts,
        "total_duration_s": round(sum(r.duration_s for r in results), 3),
        "by_campaign": [r.to_dict() for r in results],
    }

"""Content-addressed result cache for the reconstruction service.

The cache key is a sha256 over everything that determines a reconstruction
bit-for-bit: the driver name, the driver parameters (canonical sorted-key
JSON), the acquisition geometry, and the raw bytes of the sinogram and the
statistical weights.  Two submissions with identical inputs therefore map to
the same key, and the second is served the first's volume without running a
single iteration — the ``service.jobs_deduped`` counter counts these.

Entries live in memory and, when a directory is given, are also persisted
via :func:`repro.io.save_reconstruction` (``<key>.npz``), so a restarted
service re-serves results computed by a previous life.  The in-memory tier
can be LRU-bounded (``max_memory_entries``) for long-lived services: the
least-recently-used volume is dropped from RAM when the bound is exceeded,
but its disk entry (when persistence is on) keeps serving hits.

The disk tier is best-effort redundancy, never load-bearing: an
``OSError`` on a persist (ENOSPC, EIO, read-only remount) keeps the
in-memory entry and counts ``disk_write_failures``; an ``OSError`` on a
read-back is a miss that recomputes, counting ``disk_read_failures``.  A
sick cache volume therefore costs dedup hit-rate, not jobs.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.convergence import RunHistory
from repro.ct.sinogram import ScanData
from repro.io import CorruptFileError, load_reconstruction, save_reconstruction
from repro.service.faults import check_disk_fault

__all__ = ["cache_key", "CachedResult", "ResultCache"]


def _canonical_params(params: dict[str, Any]) -> str:
    """Canonical JSON of the driver params (order-independent)."""
    try:
        return json.dumps(params, sort_keys=True, default=_json_fallback)
    except TypeError as exc:
        raise TypeError(
            f"job params must be JSON-serialisable to be cacheable: {exc}"
        ) from exc


def _json_fallback(obj: Any):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        # Array-valued params (shard `voxel_subset` index sets, ndarray
        # `init` seed images) enter the key by content hash, so two child
        # jobs differing only in their seed image or stripe never alias.
        arr = np.ascontiguousarray(obj)
        return {
            "__ndarray_sha256__": hashlib.sha256(arr.tobytes()).hexdigest(),
            "shape": list(arr.shape),
            "dtype": str(arr.dtype),
        }
    raise TypeError(f"unsupported param type {type(obj).__name__}")


def cache_key(driver: str, scan: ScanData, params: dict[str, Any]) -> str:
    """sha256 hex digest identifying one reconstruction's full input."""
    geom = scan.geometry
    h = hashlib.sha256()
    h.update(driver.encode())
    h.update(b"\0")
    h.update(_canonical_params(params).encode())
    h.update(b"\0")
    h.update(
        json.dumps(
            {
                "n_pixels": geom.n_pixels,
                "n_views": geom.n_views,
                "n_channels": geom.n_channels,
                "pixel_size": geom.pixel_size,
                "channel_spacing": geom.channel_spacing,
            },
            sort_keys=True,
        ).encode()
    )
    h.update(b"\0")
    h.update(np.ascontiguousarray(scan.sinogram, dtype=np.float64).tobytes())
    h.update(b"\0")
    h.update(np.ascontiguousarray(scan.weights, dtype=np.float64).tobytes())
    return h.hexdigest()


@dataclass
class CachedResult:
    """A cache hit: the reconstructed volume plus its convergence history.

    Duck-types the ``image`` / ``history`` fields of
    :class:`~repro.core.icd.ICDResult`, which is all downstream consumers
    (result waiters, the intake layer's ``result.npz`` writer) read.
    """

    image: np.ndarray
    history: RunHistory | None
    metadata: dict[str, Any]


class ResultCache:
    """Thread-safe content-addressed store of finished reconstructions.

    Parameters
    ----------
    directory:
        Optional persistence root.  Entries are written as
        ``<key>.npz`` reconstruction files; on a key miss in memory the
        directory is consulted, so the cache survives service restarts.
    max_memory_entries:
        LRU bound on the in-memory tier (None = unbounded, the default).
        Bounding memory without a ``directory`` silently forgets the
        evicted volumes; with one, evicted entries fall back to disk hits.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_memory_entries: int | None = None,
    ) -> None:
        if max_memory_entries is not None and max_memory_entries < 1:
            raise ValueError(
                f"max_memory_entries must be >= 1 or None, got {max_memory_entries}"
            )
        self.directory = Path(directory) if directory is not None else None
        self.max_memory_entries = max_memory_entries
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, CachedResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: disk-tier persists that failed with OSError (entry stayed in RAM)
        self.disk_write_failures = 0
        #: disk-tier read-backs that failed with OSError (served as a miss)
        self.disk_read_failures = 0

    def _remember(self, key: str, entry: CachedResult) -> None:
        """Insert/refresh ``key`` as most-recent; evict past the bound."""
        self._memory[key] = entry
        self._memory.move_to_end(key)
        if self.max_memory_entries is not None:
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    def _path_for(self, key: str) -> Path | None:
        return None if self.directory is None else self.directory / f"{key}.npz"

    def get(self, key: str) -> CachedResult | None:
        """The cached result for ``key``, or None."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
        if entry is None:
            entry = self._load_from_disk(key)
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._remember(key, entry)
        return entry

    def _load_from_disk(self, key: str) -> CachedResult | None:
        path = self._path_for(key)
        try:
            if path is None or not path.is_file():
                return None
            check_disk_fault(path.parent)
            image, history, metadata = load_reconstruction(path)
        except CorruptFileError:
            # A torn entry is a miss, not an outage; recompute and overwrite.
            return None
        except OSError:
            # An unreadable disk tier is likewise a miss, not an outage.
            with self._lock:
                self.disk_read_failures += 1
            return None
        return CachedResult(image=image, history=history, metadata=metadata)

    def put(self, key: str, result, *, metadata: dict[str, Any] | None = None) -> CachedResult:
        """Store a finished reconstruction under ``key``.

        ``result`` is anything with ``image`` / ``history`` attributes (the
        drivers' result objects or a :class:`CachedResult`).
        """
        entry = CachedResult(
            image=np.array(result.image, copy=True),
            history=getattr(result, "history", None),
            metadata=dict(metadata or {}),
        )
        with self._lock:
            self._remember(key, entry)
        path = self._path_for(key)
        if path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                check_disk_fault(path.parent)
                save_reconstruction(
                    path, entry.image, entry.history, metadata=entry.metadata
                )
            except OSError:
                # Persistence is redundancy: the memory tier keeps serving
                # this entry, and the next put after the fault clears will
                # land on disk again.
                with self._lock:
                    self.disk_write_failures += 1
        return entry

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        path = self._path_for(key)
        return path is not None and path.is_file()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

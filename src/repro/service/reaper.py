"""TTL eviction of terminal jobs: long-lived gateways must not grow forever.

Every submission registers a :class:`~repro.service.jobs.Job` in
``ReconstructionService._jobs`` — status snapshots, event logs, and (until
PR 8) the full result volume — and nothing ever removed them.  Under the
sustained load the gateway harness generates, a service that lives for
days holds every job it ever ran.  The :class:`JobReaper` closes that
leak:

* every ``interval_s`` it asks the service to evict **terminal** jobs
  whose ``finished_at`` is older than ``job_ttl_s`` (PENDING/RUNNING jobs
  are never touched, no matter how old — age is measured from *finishing*,
  not submission);
* evicted ids leave a bounded **tombstone** behind, so the gateway can
  answer 410 Gone ("finished and aged out") instead of 404 ("never heard
  of it") — :class:`~repro.service.jobs.EvictedJobError` carries the
  distinction;
* the tally is observable: the ``service.jobs_evicted`` counter and the
  ``tombstones`` gauge both surface in ``GET /metrics``.

``job_ttl_s=None`` (the default) disables eviction entirely — no reaper
thread is started, matching the pre-PR-8 behaviour for short-lived
services and tests that inspect finished jobs at leisure.

The reaper owns only the *cadence*; the eviction itself
(:meth:`ReconstructionService.evict_terminal`) lives with the service,
which owns the registry lock and the tombstone book.  ``reap_once()`` is
public so tests (and drain hooks) can drive eviction deterministically
with an injected clock instead of sleeping.
"""

from __future__ import annotations

import threading

__all__ = ["JobReaper"]


class JobReaper:
    """Periodically evicts aged-out terminal jobs from a service registry.

    Parameters
    ----------
    service:
        The owning :class:`~repro.service.service.ReconstructionService`
        (anything with an ``evict_terminal(older_than_s=...)`` method).
    job_ttl_s:
        Age past ``finished_at`` after which a terminal job is evicted.
        ``None`` disables the reaper (``start`` becomes a no-op).
    interval_s:
        Sweep cadence.  Defaults to ``job_ttl_s / 4`` clamped to
        [50 ms, 1 s]: frequent enough that the registry tracks the TTL
        closely, cheap enough to be invisible next to reconstruction work.
    """

    def __init__(
        self,
        service,
        *,
        job_ttl_s: float | None,
        interval_s: float | None = None,
    ) -> None:
        if job_ttl_s is not None and job_ttl_s < 0:
            raise ValueError(f"job_ttl_s must be >= 0 or None, got {job_ttl_s}")
        self.service = service
        self.job_ttl_s = job_ttl_s
        if interval_s is None:
            interval_s = 1.0 if job_ttl_s is None else min(max(job_ttl_s / 4, 0.05), 1.0)
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def enabled(self) -> bool:
        """Whether a TTL is configured (None disables eviction)."""
        return self.job_ttl_s is not None

    @property
    def running(self) -> bool:
        """Whether the sweep thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the sweep thread (no-op when disabled or already running)."""
        if not self.enabled or self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="job-reaper", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the sweep thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # -- sweeping -------------------------------------------------------
    def reap_once(self) -> list[str]:
        """One synchronous sweep; returns the evicted job ids.

        Safe to call whether or not the thread is running (tests drive
        this directly with an injected service clock).  Disabled reapers
        evict nothing.
        """
        if not self.enabled:
            return []
        return self.service.evict_terminal(older_than_s=self.job_ttl_s)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.reap_once()

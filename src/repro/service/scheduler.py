"""The scheduler: a worker pool draining the job queue through the drivers.

Each worker thread loops: take the highest-priority pending job, then

1. honour a cancel that arrived while the job was queued (PENDING →
   CANCELLED without running anything);
2. consult the :class:`~repro.service.cache.ResultCache` — a duplicate of
   an already-finished reconstruction is served the cached volume (PENDING
   → DONE, ``from_cache=True``) without recomputation.  The check is
   *skipped* when the job already has checkpoints on disk: a mid-flight
   job whose worker died must resume, not be short-circuited by a result
   some other submission produced;
3. run the job with a per-job checkpoint directory
   (``<root>/<job_id>/checkpoints``) and ``resume_from="latest"``,
   streaming progress through a per-job
   :class:`~repro.service.progress.ProgressRecorder`.  Under
   ``worker_model="thread"`` (the default) the driver runs on the worker
   thread itself via :func:`~repro.service.runner.run_job`; under
   ``worker_model="process"`` the worker thread instead supervises a
   worker *subprocess* (:mod:`repro.service.worker`) so concurrent
   NumPy-light jobs stop serialising on the GIL — progress and cancel are
   relayed over a pipe / shared flag, the result comes back as the repo's
   npz container, and a crashed (SIGKILL'd) subprocess is respawned to
   resume bit-identically from the job's newest checkpoint;
4. file the outcome: DONE (result stored in the cache), CANCELLED (the
   cooperative :class:`JobCancelledError` surfaced at an iteration
   boundary), or FAILED (the exception message lands in ``job.error``).
   Terminal filing is race-tolerant: if the job went terminal concurrently
   (a cancel filed elsewhere racing an induced failure), the losing
   transition is dropped instead of killing the worker thread with a
   :class:`JobStateError`.

Service-level ``service.*`` counters (queue wait, run time, completion /
failure / dedup / worker-crash tallies) accumulate into a shared
:class:`~repro.observability.MetricsRecorder`, whose counters are
thread-safe (internally locked), and merge into the run report alongside
the per-job metrics.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable

from repro.observability import MetricsRecorder, as_recorder
from repro.service.cache import ResultCache
from repro.service.jobs import (
    Job,
    JobCancelledError,
    JobDeadlineError,
    JobState,
    JobStateError,
    ResultPersistError,
)
from repro.service.progress import ProgressEvent, ProgressRecorder
from repro.service.queue import JobQueue
from repro.service.runner import run_job, system_for
from repro.service.worker import (
    load_worker_result,
    mp_context,
    process_worker_main,
    worker_verdict_path,
)

__all__ = ["WORKER_MODELS", "Scheduler"]

#: Worker execution models: jobs on pool threads vs. on worker subprocesses.
WORKER_MODELS = ("thread", "process")

#: how long an idle worker blocks on the queue before re-checking shutdown.
_POLL_S = 0.1

#: how long the process-model supervisor blocks on the progress pipe before
#: re-checking the cancel flag and the child's liveness.
_RELAY_POLL_S = 0.05


class Scheduler:
    """Runs queued jobs on ``n_workers`` concurrent workers.

    Parameters
    ----------
    queue, cache:
        The shared pending queue and result cache.
    checkpoint_root:
        Directory under which each job gets its own
        ``<job_id>/checkpoints`` snapshot store.
    n_workers:
        Number of concurrently running jobs.
    worker_model:
        ``"thread"`` (default) runs each job's driver on the worker thread;
        ``"process"`` runs it in a worker subprocess supervised by the
        thread, so CPU-bound jobs scale with cores instead of serialising
        on the GIL.  Results are bit-identical across models (same
        ``run_job`` path either way), so they share cache entries.
    max_restarts:
        Process model only: how many times one job's crashed (no-verdict)
        or killed-for-hanging worker subprocess is respawned to resume
        from checkpoints before the job is filed FAILED.  Guards against a
        job that is itself the crash trigger (e.g. the OOM killer) looping
        forever.
    heartbeat_timeout_s:
        Process model only: a worker subprocess whose pipe stays silent —
        no progress, fault, or heartbeat message of any kind — for this
        long while still alive is presumed hung (deadlocked, SIGSTOPped,
        wedged in native code) and SIGKILLed; the job resumes from its
        newest checkpoint, counted against ``max_restarts`` with a
        ``WORKER_HUNG`` event and the ``service.workers_hung`` counter.
        ``None`` (default) disables the watchdog.  Children are told to
        heartbeat at a quarter of this interval.
    job_deadline_s:
        Wall-clock budget for one job across all of its worker lives.
        Process workers are SIGKILLed at the deadline (same WORKER_HUNG
        accounting; respawns past the deadline die immediately, so the
        job fails after ``max_restarts``); thread workers stop
        cooperatively at the next iteration boundary with
        :class:`~repro.service.jobs.JobDeadlineError`.  ``None``
        (default) disables deadlines.
    checkpoint_every:
        Snapshot cadence (iterations) for every job.
    driver_defaults:
        Optional execution defaults merged *under* every job's spec params
        (spec wins; keys a driver doesn't accept are dropped) — e.g.
        ``{"backend": "process", "n_workers": 4, "pipeline": True}`` runs
        the whole fleet on pipelined process pools.  A ``backend`` default
        that flips jobs to the snapshot-isolated execution model is folded
        into the result-cache key by the service (see
        :func:`~repro.service.runner.cache_key_defaults`).
    metrics:
        Optional service-level recorder receiving ``service.*`` counters.
    on_progress:
        Optional callback invoked with every job's
        :class:`~repro.service.progress.ProgressEvent` (in addition to any
        per-job subscriber registered at submit time).
    """

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        *,
        checkpoint_root: str | Path,
        n_workers: int = 2,
        worker_model: str = "thread",
        max_restarts: int = 2,
        heartbeat_timeout_s: float | None = None,
        job_deadline_s: float | None = None,
        checkpoint_every: int = 1,
        driver_defaults: dict | None = None,
        metrics: MetricsRecorder | None = None,
        on_progress: Callable[[ProgressEvent], None] | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if worker_model not in WORKER_MODELS:
            raise ValueError(
                f"unknown worker_model {worker_model!r}; use one of {WORKER_MODELS}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0 or None, got {heartbeat_timeout_s}"
            )
        if job_deadline_s is not None and job_deadline_s <= 0:
            raise ValueError(
                f"job_deadline_s must be > 0 or None, got {job_deadline_s}"
            )
        self.queue = queue
        self.cache = cache
        self.checkpoint_root = Path(checkpoint_root)
        self.n_workers = int(n_workers)
        self.worker_model = worker_model
        self.max_restarts = int(max_restarts)
        self.heartbeat_timeout_s = (
            None if heartbeat_timeout_s is None else float(heartbeat_timeout_s)
        )
        self.job_deadline_s = None if job_deadline_s is None else float(job_deadline_s)
        self.checkpoint_every = int(checkpoint_every)
        self.driver_defaults = dict(driver_defaults) if driver_defaults else None
        self.rec = as_recorder(metrics)
        self.on_progress = on_progress
        self._clock = clock
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._degraded_lock = threading.Lock()
        #: job ids whose checkpoint write path is currently degraded
        #: (CHECKPOINT_DEGRADED seen without a later CHECKPOINT_RECOVERED).
        self._degraded_jobs: set[str] = set()

    # -- counters (shared recorder; its counters are internally locked) --
    def _count(self, name: str, n: float = 1) -> None:
        self.rec.count(name, n)

    # -- fault bookkeeping ----------------------------------------------
    def _note_job_fault(self, job: Job, kind: str, detail: dict) -> None:
        """File a fault event on the job and keep the degraded-set current.

        Reached from both worker models: the thread model's
        ProgressRecorder calls it directly (``on_fault``), the process
        model relays ``("fault", kind, detail)`` pipe messages here.
        """
        job.record_event(kind, **detail)
        if kind == "CHECKPOINT_DEGRADED":
            self._count("service.checkpoint_writes_failed")
            with self._degraded_lock:
                self._degraded_jobs.add(job.job_id)
        elif kind == "CHECKPOINT_RECOVERED":
            self._count("service.checkpoint_writes_recovered")
            with self._degraded_lock:
                self._degraded_jobs.discard(job.job_id)

    @property
    def degraded_job_ids(self) -> set[str]:
        """Ids of running jobs whose checkpointing is currently degraded."""
        with self._degraded_lock:
            return set(self._degraded_jobs)

    def _forget_degraded(self, job_id: str) -> None:
        with self._degraded_lock:
            self._degraded_jobs.discard(job_id)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent while running).

        After a :meth:`stop` the pool restarts cleanly: the previous
        worker generation is joined first (so two generations never serve
        at once) and a fresh one is spawned against the still-open queue.
        A scheduler whose queue was *closed* (final shutdown) cannot be
        restarted — that raises instead of spawning workers that would
        spin on a queue no submission can ever reach again.
        """
        if self.queue.closed:
            raise RuntimeError("cannot start: the job queue is closed (final shutdown)")
        if self._stop.is_set():
            # A stopped generation may still be winding down; join it so
            # the restart never runs two generations side by side.
            for t in self._threads:
                t.join()
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            return
        self._stop.clear()
        for i in range(self.n_workers):
            t = threading.Thread(target=self._worker, name=f"recon-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)

    def stop(self, *, wait: bool = True, close: bool = False) -> None:
        """Stop the workers; optionally join them and close the queue.

        Jobs already running finish (or get cancelled by their owners).
        The queue stays **open** unless ``close=True`` (final shutdown):
        submissions keep queueing while the pool is parked, and a later
        :meth:`start` serves them — ``stop``/``start`` is pause/resume,
        not teardown.  With ``wait=False`` the worker threads keep
        winding down in the background; :attr:`running` stays True until
        they actually exit (the thread list is only pruned once joined),
        and a premature :meth:`start` joins them before spawning the next
        generation.
        """
        self._stop.set()
        if close:
            self.queue.close()  # also wakes getters blocked without timeout
        if wait:
            for t in self._threads:
                t.join()
            self._threads = []

    @property
    def running(self) -> bool:
        """Whether worker threads are active."""
        return any(t.is_alive() for t in self._threads)

    # -- worker loop ----------------------------------------------------
    def checkpoint_dir_for(self, job_id: str) -> Path:
        """Where a job's checkpoints live (stable across worker lives)."""
        return self.checkpoint_root / job_id / "checkpoints"

    def _file_terminal(self, job: Job, state: JobState, **detail) -> bool:
        """Transition ``job`` terminal, tolerating a lost race.

        A failure filing can race a concurrent cancel (or any other
        terminal transition filed outside this worker): ``transition``
        then raises :class:`JobStateError` because the job is already
        terminal.  That is a lost race, not a scheduler bug — swallow it
        (the job IS terminal, which is all the caller needs) and return
        False so the caller skips the loser's accounting.  A
        :class:`JobStateError` on a job that is *not* terminal is a real
        state-machine violation and propagates.
        """
        try:
            job.transition(state, **detail)
            return True
        except JobStateError:
            if job.terminal:
                self._count("service.terminal_races")
                return False
            raise

    def _worker(self) -> None:
        while True:
            job = self.queue.get(timeout=_POLL_S)
            if job is None:
                if self._stop.is_set():
                    return
                continue
            try:
                self._execute(job)
            except Exception as exc:  # never let a worker thread die silently
                if self._file_terminal(job, JobState.FAILED, error=f"worker error: {exc}"):
                    self._count("service.jobs_failed")

    def _execute(self, job: Job) -> None:
        self._count("service.queue_wait_s", self._clock() - job.submitted_at)
        if job.cancel_requested:
            if self._file_terminal(job, JobState.CANCELLED):
                self._count("service.jobs_cancelled")
            return

        ckpt_dir = self.checkpoint_dir_for(job.job_id)
        has_checkpoints = any(ckpt_dir.glob("ckpt-*.ckpt"))

        if job.cache_key is not None and not has_checkpoints:
            entry = self.cache.get(job.cache_key)
            if entry is not None:
                # A cancel can land between the check above and here (the
                # cancel-vs-dedup window): the cache hit is instantaneous
                # completion, so DONE wins — PENDING → DONE is valid even
                # with the cancel flag set, and the requester simply finds
                # the job finished.
                job.result = entry
                job.from_cache = True
                job.record_event("DEDUPED", cache_key=job.cache_key)
                if self._file_terminal(job, JobState.DONE, from_cache=True):
                    self._count("service.jobs_deduped")
                    self._count("service.jobs_completed")
                return

        job.transition(JobState.RUNNING, resumed=has_checkpoints)
        started = self._clock()
        try:
            if self.worker_model == "process":
                result = self._run_in_process(job, ckpt_dir)
            else:
                recorder = ProgressRecorder(
                    job,
                    self.on_progress,
                    on_fault=self._note_job_fault,
                    deadline=(
                        None
                        if self.job_deadline_s is None
                        else time.monotonic() + self.job_deadline_s
                    ),
                )
                job.metrics = recorder
                result = run_job(
                    job.spec,
                    checkpoint_dir=ckpt_dir,
                    checkpoint_every=self.checkpoint_every,
                    metrics=recorder,
                    driver_defaults=self.driver_defaults,
                )
        except JobCancelledError:
            if self._file_terminal(job, JobState.CANCELLED, iteration=job.iteration):
                self._count("service.jobs_cancelled")
            return
        except Exception as exc:
            if self._file_terminal(job, JobState.FAILED, error=str(exc)):
                self._count("service.jobs_failed")
            return
        finally:
            self._count("service.run_s", self._clock() - started)
            # Whatever happened, a finished job no longer degrades health.
            self._forget_degraded(job.job_id)

        job.result = result
        if job.cache_key is not None:
            self.cache.put(
                job.cache_key,
                result,
                metadata={"job_id": job.job_id, "driver": job.spec.driver},
            )
        if self._file_terminal(job, JobState.DONE):
            self._count("service.jobs_completed")

    # -- process worker model -------------------------------------------
    def _emit_progress(self, event: ProgressEvent) -> None:
        if self.on_progress is not None:
            self.on_progress(event)

    def _relay(self, job: Job, message: tuple) -> None:
        """Mirror one child progress message onto the parent-side job."""
        kind, iteration, duration = message[0], int(message[1]), message[2]
        if kind == "iteration":
            job.note_iteration(iteration, duration)
        else:
            job.note_checkpoint(iteration)
        self._emit_progress(
            ProgressEvent(
                job_id=job.job_id, kind=kind, iteration=iteration, duration_s=duration
            )
        )

    def _consume_verdict(self, ckpt_dir: Path) -> tuple | None:
        """Read and clear a child-persisted fallback verdict, if any.

        A worker whose pipe tore at the end writes ``verdict.json`` next
        to its result container; consuming it before (re)spawning keeps a
        finished job from being re-run.  An unreadable file is dropped —
        the crash path (resume from checkpoints) is always safe.
        """
        path = worker_verdict_path(ckpt_dir)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            return None
        path.unlink(missing_ok=True)
        if isinstance(doc, dict) and isinstance(doc.get("kind"), str):
            self._count("service.worker_verdict_files")
            return (doc["kind"], doc.get("payload"))
        return None

    def _run_in_process(self, job: Job, ckpt_dir: Path):
        """Supervise ``job`` through worker subprocess lives.

        Spawns a worker subprocess per life, relays its progress stream
        onto the job, mirrors ``request_cancel`` into the shared cancel
        flag, and turns its verdict into the same outcomes the thread
        model produces (``JobCancelledError`` for a cooperative cancel, an
        exception for FAILED, the loaded result container for DONE).  A
        life that dies with no verdict — SIGKILL, segfault, OOM — is
        respawned up to ``max_restarts`` times; ``run_job`` in the fresh
        child resumes from the job's newest checkpoint bit-identically.

        The same restart budget covers the liveness watchdog: a child
        whose pipe stays silent past ``heartbeat_timeout_s`` while alive
        (hung, SIGSTOPped, wedged in native code) or that outlives
        ``job_deadline_s`` is SIGKILLed here — SIGKILL terminates even a
        stopped process — and handled exactly like a crash, except the
        event says ``WORKER_HUNG`` and the counter ``workers_hung``.
        """
        # Build the (process-wide, read-only) system matrix in the parent
        # first: forked children inherit it copy-on-write instead of each
        # rebuilding it from scratch.
        system_for(job.spec.scan.geometry)
        ctx = mp_context()
        restarts = 0
        deadline = (
            None
            if self.job_deadline_s is None
            else time.monotonic() + self.job_deadline_s
        )
        hb_timeout = self.heartbeat_timeout_s
        # Children beat at a quarter of the timeout: several beats must be
        # missed in a row before the watchdog fires, so one slow scheduler
        # tick never kills a healthy worker.
        hb_interval = None if hb_timeout is None else max(0.01, hb_timeout / 4.0)
        while True:
            # A previous life may have finished but lost its pipe: its
            # persisted verdict stands in for the send.
            verdict = self._consume_verdict(ckpt_dir)
            hung_reason = None
            exitcode = None
            if verdict is None:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                cancel_event = ctx.Event()
                if job.cancel_requested:
                    cancel_event.set()
                proc = ctx.Process(
                    target=process_worker_main,
                    args=(
                        child_conn,
                        cancel_event,
                        job.spec,
                        str(ckpt_dir),
                        self.checkpoint_every,
                        self.driver_defaults,
                        hb_interval,
                    ),
                    name=f"recon-job-{job.job_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()  # parent keeps only the receiving end
                last_seen = time.monotonic()
                try:
                    while True:
                        # Liveness checks come first so a chatty child (its
                        # pipe never idle) still gets deadline-checked.
                        now = time.monotonic()
                        if deadline is not None and now >= deadline:
                            hung_reason = "deadline"
                        elif (
                            hb_timeout is not None
                            and now - last_seen >= hb_timeout
                            and proc.is_alive()
                        ):
                            # Alive but silent past the timeout: hung.  (A
                            # dead child goes the EOF/no-verdict crash path
                            # below instead.)
                            hung_reason = "heartbeat_timeout"
                        if hung_reason is not None:
                            proc.kill()
                            break
                        if job.cancel_requested and not cancel_event.is_set():
                            cancel_event.set()
                        if parent_conn.poll(_RELAY_POLL_S):
                            try:
                                message = parent_conn.recv()
                            except EOFError:  # child gone mid-message
                                break
                            last_seen = time.monotonic()
                            kind = message[0]
                            if kind in ("iteration", "checkpoint"):
                                self._relay(job, message)
                            elif kind == "heartbeat":
                                pass  # liveness only; last_seen just updated
                            elif kind == "fault":
                                self._note_job_fault(job, message[1], dict(message[2]))
                            else:
                                verdict = message
                                break
                        elif not proc.is_alive():
                            # Dead and the pipe is drained: no verdict is coming.
                            if not parent_conn.poll(0):
                                break
                finally:
                    parent_conn.close()
                proc.join()
                exitcode = proc.exitcode
                if verdict is None and hung_reason is None:
                    # The child may have finished but lost the pipe race:
                    # check for a persisted verdict before calling it a crash.
                    verdict = self._consume_verdict(ckpt_dir)

            if verdict is not None:
                kind, payload = verdict
                if kind == "done":
                    if isinstance(payload, dict):
                        # The child's counter snapshot stands in for the
                        # thread model's per-job recorder (span trees stay
                        # in the child; counters are what report consumers
                        # read).
                        job_rec = MetricsRecorder()
                        job_rec.merge_counters(payload)
                        job.metrics = job_rec
                    return load_worker_result(ckpt_dir)
                if kind == "cancelled":
                    raise JobCancelledError(payload)
                # kind == "failed"
                if isinstance(payload, str) and payload.startswith(
                    "ResultPersistError"
                ):
                    raise ResultPersistError(payload)
                raise RuntimeError(payload)

            # No verdict: the worker process died (or was killed) under the
            # job.  Hangs and crashes share the restart budget but are
            # tallied separately — a hang was *our* kill, and operators
            # tune heartbeat_timeout_s by watching workers_hung.
            restarts += 1
            if hung_reason is not None:
                self._count("service.workers_hung")
                job.record_event(
                    "WORKER_HUNG",
                    reason=hung_reason,
                    exitcode=exitcode,
                    restarts=restarts,
                )
            else:
                self._count("service.worker_crashes")
                job.record_event(
                    "WORKER_CRASHED", exitcode=exitcode, restarts=restarts
                )
            if restarts > self.max_restarts:
                if hung_reason == "deadline":
                    raise JobDeadlineError(
                        f"job exceeded its {self.job_deadline_s:g}s deadline; "
                        f"worker killed {restarts} times; giving up after "
                        f"max_restarts={self.max_restarts}"
                    )
                raise RuntimeError(
                    f"worker process died {restarts} times without a verdict "
                    f"(last exitcode {exitcode}"
                    + (f", last kill: {hung_reason}" if hung_reason else "")
                    + f"); giving up after max_restarts={self.max_restarts}"
                )

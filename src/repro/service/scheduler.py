"""The scheduler: a worker pool draining the job queue through the drivers.

Each worker thread loops: take the highest-priority pending job, then

1. honour a cancel that arrived while the job was queued (PENDING →
   CANCELLED without running anything);
2. consult the :class:`~repro.service.cache.ResultCache` — a duplicate of
   an already-finished reconstruction is served the cached volume (PENDING
   → DONE, ``from_cache=True``) without recomputation.  The check is
   *skipped* when the job already has checkpoints on disk: a mid-flight
   job whose worker died must resume, not be short-circuited by a result
   some other submission produced;
3. run the job via :func:`~repro.service.runner.run_job` with a per-job
   checkpoint directory (``<root>/<job_id>/checkpoints``) and
   ``resume_from="latest"``, streaming progress through a per-job
   :class:`~repro.service.progress.ProgressRecorder`;
4. file the outcome: DONE (result stored in the cache), CANCELLED (the
   cooperative :class:`JobCancelledError` surfaced at an iteration
   boundary), or FAILED (the exception message lands in ``job.error``).

Service-level ``service.*`` counters (queue wait, run time, completion /
failure / dedup tallies) accumulate into a shared
:class:`~repro.observability.MetricsRecorder`, whose counters are
thread-safe (internally locked), and merge into the run report alongside
the per-job metrics.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable

from repro.observability import MetricsRecorder, as_recorder
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobCancelledError, JobState
from repro.service.progress import ProgressEvent, ProgressRecorder
from repro.service.queue import JobQueue
from repro.service.runner import run_job

__all__ = ["Scheduler"]

#: how long an idle worker blocks on the queue before re-checking shutdown.
_POLL_S = 0.1


class Scheduler:
    """Runs queued jobs on ``n_workers`` concurrent worker threads.

    Parameters
    ----------
    queue, cache:
        The shared pending queue and result cache.
    checkpoint_root:
        Directory under which each job gets its own
        ``<job_id>/checkpoints`` snapshot store.
    n_workers:
        Number of concurrently running jobs.
    checkpoint_every:
        Snapshot cadence (iterations) for every job.
    driver_defaults:
        Optional execution defaults merged *under* every job's spec params
        (spec wins; keys a driver doesn't accept are dropped) — e.g.
        ``{"backend": "process", "n_workers": 4, "pipeline": True}`` runs
        the whole fleet on pipelined process pools.  A ``backend`` default
        that flips jobs to the snapshot-isolated execution model is folded
        into the result-cache key by the service (see
        :func:`~repro.service.runner.cache_key_defaults`).
    metrics:
        Optional service-level recorder receiving ``service.*`` counters.
    on_progress:
        Optional callback invoked with every job's
        :class:`~repro.service.progress.ProgressEvent` (in addition to any
        per-job subscriber registered at submit time).
    """

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        *,
        checkpoint_root: str | Path,
        n_workers: int = 2,
        checkpoint_every: int = 1,
        driver_defaults: dict | None = None,
        metrics: MetricsRecorder | None = None,
        on_progress: Callable[[ProgressEvent], None] | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.queue = queue
        self.cache = cache
        self.checkpoint_root = Path(checkpoint_root)
        self.n_workers = int(n_workers)
        self.checkpoint_every = int(checkpoint_every)
        self.driver_defaults = dict(driver_defaults) if driver_defaults else None
        self.rec = as_recorder(metrics)
        self.on_progress = on_progress
        self._clock = clock
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- counters (shared recorder; its counters are internally locked) --
    def _count(self, name: str, n: float = 1) -> None:
        self.rec.count(name, n)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for i in range(self.n_workers):
            t = threading.Thread(target=self._worker, name=f"recon-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)

    def stop(self, *, wait: bool = True) -> None:
        """Stop taking new jobs; optionally join the workers.

        Jobs already running finish (or get cancelled by their owners);
        jobs still queued stay PENDING.
        """
        self._stop.set()
        self.queue.close()
        if wait:
            for t in self._threads:
                t.join()
        self._threads = []

    @property
    def running(self) -> bool:
        """Whether worker threads are active."""
        return any(t.is_alive() for t in self._threads)

    # -- worker loop ----------------------------------------------------
    def checkpoint_dir_for(self, job_id: str) -> Path:
        """Where a job's checkpoints live (stable across worker lives)."""
        return self.checkpoint_root / job_id / "checkpoints"

    def _worker(self) -> None:
        while True:
            job = self.queue.get(timeout=_POLL_S)
            if job is None:
                if self._stop.is_set():
                    return
                continue
            try:
                self._execute(job)
            except Exception as exc:  # never let a worker thread die silently
                if not job.terminal:
                    job.transition(JobState.FAILED, error=f"worker error: {exc}")
                    self._count("service.jobs_failed")

    def _execute(self, job: Job) -> None:
        self._count("service.queue_wait_s", self._clock() - job.submitted_at)
        if job.cancel_requested:
            job.transition(JobState.CANCELLED)
            self._count("service.jobs_cancelled")
            return

        ckpt_dir = self.checkpoint_dir_for(job.job_id)
        has_checkpoints = any(ckpt_dir.glob("ckpt-*.ckpt"))

        if job.cache_key is not None and not has_checkpoints:
            entry = self.cache.get(job.cache_key)
            if entry is not None:
                job.result = entry
                job.from_cache = True
                job.record_event("DEDUPED", cache_key=job.cache_key)
                job.transition(JobState.DONE, from_cache=True)
                self._count("service.jobs_deduped")
                self._count("service.jobs_completed")
                return

        job.transition(JobState.RUNNING, resumed=has_checkpoints)
        recorder = ProgressRecorder(job, self.on_progress)
        job.metrics = recorder
        started = self._clock()
        try:
            result = run_job(
                job.spec,
                checkpoint_dir=ckpt_dir,
                checkpoint_every=self.checkpoint_every,
                metrics=recorder,
                driver_defaults=self.driver_defaults,
            )
        except JobCancelledError:
            job.transition(JobState.CANCELLED, iteration=job.iteration)
            self._count("service.jobs_cancelled")
            return
        except Exception as exc:
            job.transition(JobState.FAILED, error=str(exc))
            self._count("service.jobs_failed")
            return
        finally:
            self._count("service.run_s", self._clock() - started)

        job.result = result
        if job.cache_key is not None:
            self.cache.put(
                job.cache_key,
                result,
                metadata={"job_id": job.job_id, "driver": job.spec.driver},
            )
        job.transition(JobState.DONE)
        self._count("service.jobs_completed")

"""Disk-fault graceful degradation: writers that retry, then suppress.

The serving stack writes to disk in four places — checkpoint saves, the
worker's result container, the result cache's disk tier, and the intake's
``status.json`` mirrors — and before this module the first ``ENOSPC`` /
``EIO`` / ``EROFS`` on any of them failed an otherwise-healthy
reconstruction.  That inverts the durability hierarchy: checkpoints and
cache entries exist to *protect* the computation, so losing them should
cost redundancy, never the job.

:class:`DegradableWriter` encodes the policy every degradable write path
shares:

* **healthy** — attempt the write; on :class:`OSError` retry up to
  ``RetryPolicy.attempts`` times with capped decorrelated-jitter backoff
  (:func:`next_backoff`, the same helper the load generator's 429 path
  uses so backpressured clients don't wake in lockstep);
* **degraded** — after persistent failure, flip to best-effort-suspended:
  subsequent writes are suppressed (cheap, no syscalls) except for a
  periodic re-probe, so a cleared fault (space freed, volume remounted)
  re-enables the write path without operator action;
* **hooks** — ``on_degrade(exc)`` / ``on_recover()`` fire exactly once
  per transition, which is how the scheduler learns to file
  ``CHECKPOINT_DEGRADED`` / ``CHECKPOINT_RECOVERED`` job events and bump
  the ``service.checkpoint_writes_failed`` counter.

Only an unwritable *result* is terminal — the result is the job's one
irreplaceable artifact, and the worker surfaces that as
:class:`~repro.service.jobs.ResultPersistError` → FAILED with the errno
in the detail.

Fault injection: tests and the chaos harness run as whatever user the CI
container provides (often root, which ignores permission bits), so
``chmod``-based fault injection is unreliable.  Instead every degradable
path calls :func:`check_disk_fault` before touching the filesystem: a
``.disk-fault`` sentinel file in the target directory makes the write
raise the ``OSError`` named inside it (default ``ENOSPC``).  The sentinel
crosses ``fork`` boundaries for free and clears by deleting the file.
"""

from __future__ import annotations

import errno as errno_mod
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.resilience import Checkpoint, CheckpointManager

__all__ = [
    "next_backoff",
    "RetryPolicy",
    "DegradableWriter",
    "DegradingCheckpointManager",
    "DISK_FAULT_SENTINEL",
    "check_disk_fault",
    "arm_disk_fault",
    "disarm_disk_fault",
]


def next_backoff(
    prev_s: float,
    *,
    base_s: float,
    cap_s: float,
    rng: random.Random | None = None,
) -> float:
    """Decorrelated-jitter backoff: ``min(cap, uniform(base, prev * 3))``.

    Seed ``prev_s`` with ``base_s`` on the first retry.  Unlike plain
    exponential backoff the delays are sampled, not computed, so a herd
    of clients (or writers) that failed at the same instant spreads out
    instead of retrying in lockstep.
    """
    if base_s < 0 or cap_s < 0:
        raise ValueError(f"backoff bounds must be >= 0, got {base_s}/{cap_s}")
    pick = (rng or random).uniform
    lo = min(base_s, cap_s)
    hi = max(lo, prev_s * 3.0)
    return min(cap_s, pick(lo, hi))


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a healthy :class:`DegradableWriter` tries before degrading."""

    #: Total attempts (first try + retries) while healthy.
    attempts: int = 3
    #: First-retry backoff seed, seconds.
    base_s: float = 0.05
    #: Backoff ceiling, seconds — keeps a worker's iteration cadence sane.
    cap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


class DegradableWriter:
    """Retry-then-suppress wrapper for best-effort disk writes.

    Not thread-safe: each instance belongs to one writer (a worker's
    checkpoint manager, the cache's disk tier under the cache lock, ...).

    Parameters
    ----------
    name:
        Label for diagnostics (``checkpoint:<job>``, ``cache-disk``, ...).
    policy:
        Retry budget while healthy.
    reprobe_every:
        While degraded, one real write attempt is made every this many
        calls (the rest are suppressed without syscalls).  The default of
        1 probes on every call — the write itself is the probe, which is
        the right trade for checkpoint-cadence callers.
    on_degrade / on_recover:
        Transition hooks; ``on_degrade`` receives the final ``OSError``.
    sleep / rng:
        Injectable for tests (real campaigns keep the defaults).
    """

    def __init__(
        self,
        name: str,
        *,
        policy: RetryPolicy | None = None,
        reprobe_every: int = 1,
        on_degrade: Callable[[OSError], None] | None = None,
        on_recover: Callable[[], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        self.name = name
        self.policy = policy or RetryPolicy()
        self.reprobe_every = max(1, int(reprobe_every))
        self.on_degrade = on_degrade
        self.on_recover = on_recover
        self._sleep = sleep
        self._rng = rng or random.Random()
        self.degraded = False
        self.last_error: OSError | None = None
        #: Individual OS-level write attempts that raised.
        self.failed_writes = 0
        #: Calls answered without touching the disk while degraded.
        self.suppressed_writes = 0
        self.degradations = 0
        self.recoveries = 0
        self._degraded_calls = 0

    def attempt(self, fn: Callable[[], Any]) -> tuple[bool, Any]:
        """Run ``fn`` under the degradation policy.

        Returns ``(True, value)`` when the write landed and
        ``(False, None)`` when it was suppressed or exhausted its
        retries — the caller carries on either way; only the *result*
        writer escalates a persistent failure into a typed error.
        """
        if self.degraded:
            self._degraded_calls += 1
            if self._degraded_calls % self.reprobe_every != 0:
                self.suppressed_writes += 1
                return False, None
            try:
                value = fn()
            except OSError as exc:
                self.failed_writes += 1
                self.suppressed_writes += 1
                self.last_error = exc
                return False, None
            self.degraded = False
            self._degraded_calls = 0
            self.recoveries += 1
            if self.on_recover is not None:
                self.on_recover()
            return True, value

        delay = self.policy.base_s
        for attempt in range(self.policy.attempts):
            try:
                return True, fn()
            except OSError as exc:
                self.failed_writes += 1
                self.last_error = exc
                if attempt + 1 < self.policy.attempts:
                    delay = next_backoff(
                        delay,
                        base_s=self.policy.base_s,
                        cap_s=self.policy.cap_s,
                        rng=self._rng,
                    )
                    self._sleep(delay)
        self.degraded = True
        self.degradations += 1
        self._degraded_calls = 0
        if self.on_degrade is not None:
            self.on_degrade(self.last_error)
        return False, None

    def stats(self) -> dict[str, Any]:
        """Counters snapshot for reports and chaos invariants."""
        return {
            "name": self.name,
            "degraded": self.degraded,
            "failed_writes": self.failed_writes,
            "suppressed_writes": self.suppressed_writes,
            "degradations": self.degradations,
            "recoveries": self.recoveries,
            "last_error": str(self.last_error) if self.last_error else None,
        }


class DegradingCheckpointManager(CheckpointManager):
    """A :class:`~repro.resilience.CheckpointManager` whose saves degrade.

    :meth:`save` returns the written path, or ``None`` when the save was
    suppressed — the driver hooks mark the enclosing ``checkpoint_save``
    span ``suppressed`` so progress recorders don't count a checkpoint
    that never hit the disk.  Loads are untouched: reading back existing
    checkpoints still works (and still skips corrupt files) while the
    write path is degraded.

    ``recorder`` is notified on transitions.  A recorder with a
    ``note_fault(kind, **detail)`` method (the service-side progress /
    relay recorders) gets ``CHECKPOINT_DEGRADED`` /
    ``CHECKPOINT_RECOVERED`` events; a plain
    :class:`~repro.observability.MetricsRecorder` gets
    ``checkpoint.degraded`` / ``checkpoint.recovered`` counters instead.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        keep: int = 3,
        recorder: Any = None,
        policy: RetryPolicy | None = None,
        reprobe_every: int = 1,
    ) -> None:
        super().__init__(directory, keep=keep)
        self._recorder = recorder
        self.writer = DegradableWriter(
            f"checkpoint:{Path(directory).parent.name or directory}",
            policy=policy or RetryPolicy(attempts=2, base_s=0.02, cap_s=0.25),
            reprobe_every=reprobe_every,
            on_degrade=self._on_degrade,
            on_recover=self._on_recover,
        )

    def save(self, checkpoint: Checkpoint) -> Path | None:  # type: ignore[override]
        def write() -> Path:
            check_disk_fault(self.directory)
            return CheckpointManager.save(self, checkpoint)

        ok, path = self.writer.attempt(write)
        return path if ok else None

    def _note(self, kind: str, **detail: Any) -> None:
        rec = self._recorder
        if rec is None:
            return
        note = getattr(rec, "note_fault", None)
        if note is not None:
            note(kind, **detail)
        else:
            count = getattr(rec, "count", None)
            if count is not None:
                count(f"checkpoint.{kind.rsplit('_', 1)[-1].lower()}", 1)

    def _on_degrade(self, exc: OSError | None) -> None:
        self._note(
            "CHECKPOINT_DEGRADED",
            errno=getattr(exc, "errno", None),
            error=str(exc) if exc is not None else "",
        )

    def _on_recover(self) -> None:
        self._note("CHECKPOINT_RECOVERED")


#: Basename of the fault-injection sentinel honoured by degradable writers.
DISK_FAULT_SENTINEL = ".disk-fault"


def check_disk_fault(directory: str | Path) -> None:
    """Raise the injected :class:`OSError` if ``directory`` carries one.

    A ``.disk-fault`` sentinel file names the errno to raise (``ENOSPC``
    when empty or unreadable).  Production directories never contain one,
    so the healthy-path cost is a single ``stat`` that fails.
    """
    sentinel = Path(directory) / DISK_FAULT_SENTINEL
    try:
        name = sentinel.read_text().strip() or "ENOSPC"
    except FileNotFoundError:
        return
    except OSError:
        name = "ENOSPC"
    code = getattr(errno_mod, name, errno_mod.ENOSPC)
    raise OSError(code, f"{os.strerror(code)} [injected: {sentinel}]")


def arm_disk_fault(directory: str | Path, errno_name: str = "ENOSPC") -> Path:
    """Plant a disk-fault sentinel in ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sentinel = directory / DISK_FAULT_SENTINEL
    sentinel.write_text(errno_name)
    return sentinel


def disarm_disk_fault(directory: str | Path) -> None:
    """Clear a planted disk-fault sentinel; idempotent."""
    (Path(directory) / DISK_FAULT_SENTINEL).unlink(missing_ok=True)

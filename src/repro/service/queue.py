"""Priority job queue with admission control.

Ordering is **priority first, FIFO within a priority class**: each entry is
keyed ``(-priority, seq)`` where ``seq`` is the monotonically increasing
submission number, so two jobs of equal priority dequeue in the order they
were accepted.

Admission control is a bounded depth: past ``max_depth`` pending entries,
:meth:`JobQueue.put` raises the typed :class:`AdmissionError` immediately
instead of blocking — backpressure the submitter can see and retry on,
rather than an invisible ever-growing backlog.

A **closed** queue rejects submissions too: :meth:`JobQueue.put` after
:meth:`JobQueue.close` raises the typed :class:`QueueClosedError` instead
of silently enqueueing a job no worker will ever drain (it would sit
PENDING forever — workers only drain a queue while it is open).  The HTTP
gateway maps it to 503 and the directory intake defers the spec for a
later poll.
"""

from __future__ import annotations

import heapq
import threading
import time

from repro.service.jobs import Job, ServiceError

__all__ = ["AdmissionError", "QueueClosedError", "JobQueue"]


class AdmissionError(ServiceError):
    """The queue is at capacity; the submission was rejected, not enqueued."""

    def __init__(self, depth: int, max_depth: int) -> None:
        super().__init__(
            f"job queue is full ({depth}/{max_depth} pending); resubmit after "
            f"the backlog drains"
        )
        self.depth = depth
        self.max_depth = max_depth


class QueueClosedError(ServiceError):
    """The queue is closed; the submission was rejected, not enqueued.

    Raised by :meth:`JobQueue.put` after :meth:`JobQueue.close` — a job
    accepted into a closed queue would never be drained and would wedge
    PENDING forever.
    """

    def __init__(self) -> None:
        super().__init__("job queue is closed; no further submissions accepted")


class JobQueue:
    """Thread-safe bounded priority queue of :class:`Job` objects.

    Parameters
    ----------
    max_depth:
        Maximum number of *pending* entries.  ``None`` disables admission
        control.  Jobs a worker has already taken do not count against it.
    """

    def __init__(self, max_depth: int | None = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, Job]] = []
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def depth(self) -> int:
        """Number of jobs waiting to be picked up."""
        return len(self)

    def put(self, job: Job) -> None:
        """Enqueue ``job``.

        Raises :class:`AdmissionError` at capacity and
        :class:`QueueClosedError` after :meth:`close` — both *before*
        enqueueing, so a rejected job is never half-accepted.
        """
        with self._lock:
            if self._closed:
                raise QueueClosedError()
            if self.max_depth is not None and len(self._heap) >= self.max_depth:
                raise AdmissionError(len(self._heap), self.max_depth)
            heapq.heappush(self._heap, (-job.spec.priority, job.seq, job))
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Job | None:
        """Dequeue the highest-priority job; None on timeout or close.

        Blocks up to ``timeout`` seconds (forever when None) while the
        queue is empty and open.  The wait is a deadline-aware loop, not a
        single ``wait()``: a ``notify`` consumed by a faster consumer (the
        notified getter reacquires the lock only after another ``get``
        already popped the job) or a spurious wakeup re-enters the wait
        with the remaining budget instead of returning a contract-breaking
        ``None`` from an open queue.
        """
        with self._not_empty:
            if timeout is None:
                while not self._heap and not self._closed:
                    self._not_empty.wait()
            else:
                deadline = time.monotonic() + timeout
                while not self._heap and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        break
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Wake every blocked :meth:`get`; subsequent empty gets return None."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed

"""HTTP gateway: a REST front end on :class:`ReconstructionService`.

The job service (DESIGN.md §12) was in-process / file-protocol only; this
module makes it network-facing with nothing but the standard library —
:class:`http.server.ThreadingHTTPServer` spawns one handler thread per
request, so submissions, status polls, result fetches, and cancels all hit
the service concurrently.  That is exactly the multi-writer workload that
motivated the PR-7 concurrency fixes underneath: the queue's deadline-aware
wait loop, the intake quarantine, and the thread-safe
:class:`~repro.observability.MetricsRecorder` a gateway shares across
request handlers and Scheduler workers (DESIGN.md §14).

Endpoints (all JSON unless noted):

========  ======================  =============================================
method    path                    behaviour
========  ======================  =============================================
POST      ``/jobs``               submit ``{"driver", "scan", "params",
                                  "priority", "job_id"?}`` → 201 + job id;
                                  429 + ``Retry-After`` when admission control
                                  rejects (queue full); 400 malformed;
                                  409 duplicate active id; 503 +
                                  ``Retry-After`` closed/closing service.
                                  An optional ``"shards"`` object turns the
                                  submission into a *job group*
                                  (:mod:`repro.multires.shards`):
                                  ``{"mode": "slices"}`` fans a volume-scan
                                  file (``repro.io.save_volume_scan``) out as
                                  one child per slice; ``{"mode": "rows",
                                  "n_shards", "halo"?, "rounds"?,
                                  "sweeps_per_round"?}`` runs one oversized
                                  slice as halo-exchanged row stripes.  The
                                  201 body carries the *group* id, which the
                                  status/result/cancel routes below accept
                                  like any job id.  Invalid shard specs → 400
GET       ``/jobs/<id>``          status snapshot (404 unknown, 410 evicted);
                                  group ids answer the aggregate snapshot
                                  (child count/progress/rounds + child ids)
GET       ``/jobs/<id>/result``   the reconstruction as ``result.npz`` bytes
                                  (``application/octet-stream``); optional
                                  ``?timeout=S`` blocks for a finish; 409 +
                                  ``Retry-After`` while PENDING/RUNNING,
                                  410 if CANCELLED, 500 if FAILED.  Group ids
                                  stream the *stitched* volume in the same
                                  container
DELETE    ``/jobs/<id>``          request cancellation → 202 (404 unknown);
                                  group ids cancel every child
GET       ``/metrics``            Prometheus text format: every recorder
                                  counter + span total, plus live gauges
                                  (queue depth, known jobs)
GET       ``/healthz``            liveness + degradation probe: 200 once
                                  serving, body reports ``"degraded": true``
                                  plus reasons while checkpoint writes are
                                  failing or hung workers have been killed
========  ======================  =============================================

The ``scan`` field names a scan file on the *server* (``repro.io.save_scan``
format), resolved against the gateway's ``scan_root``; loaded scans are
cached by (path, mtime) so a load generator submitting hundreds of jobs
against one scan file does not re-read it per request.  The cache is
LRU-bounded (``scan_cache_size``) so a gateway fed many distinct scan files
over a long life does not pin them all in memory.

Ids the service's TTL reaper evicted answer **410 Gone** (with
``"evicted": true`` in the body) on status/result/cancel — distinct from
404 for ids the service never saw — and submissions against a closing
service's queue answer **503** with a ``Retry-After`` hint, so clients use
the same backoff discipline for drain windows as for admission control.

``python -m repro serve-http`` wraps this in a CLI;
:mod:`repro.service.loadgen` drives it under sustained load.
"""

from __future__ import annotations

import json
import re
import tempfile
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.ct.sinogram import ScanData
from repro.io import save_reconstruction
from repro.io import load_scan as _load_scan
from repro.io import load_volume_scan as _load_volume_scan
from repro.observability import MetricsRecorder
from repro.service.jobs import (
    EvictedJobError,
    JobSpec,
    JobState,
    JobStateError,
    UnknownJobError,
)
from repro.service.queue import AdmissionError, QueueClosedError
from repro.service.service import ReconstructionService

__all__ = ["HttpGateway"]

_JOB_PATH = re.compile(r"^/jobs/(?P<job_id>[A-Za-z0-9._-]+)$")
_RESULT_PATH = re.compile(r"^/jobs/(?P<job_id>[A-Za-z0-9._-]+)/result$")

#: Content type of the Prometheus text exposition format.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HttpGateway:
    """Serve a :class:`ReconstructionService` over HTTP.

    Parameters
    ----------
    service:
        The (started) service to front.  The gateway does not own it unless
        ``own_service=True`` — then :meth:`close` also closes the service.
    host, port:
        Bind address.  ``port=0`` picks a free port (read it back from
        :attr:`port` / :attr:`url`).
    scan_root:
        Directory against which relative ``scan`` paths in submissions
        resolve.  Absolute paths are honoured as-is (the gateway trusts its
        submitters; it is an internal service, not an internet edge).
    retry_after_s:
        Value of the ``Retry-After`` header on 429 responses.
    scan_cache_size:
        LRU bound on the (path, mtime) scan cache — distinct scan files
        held in memory at once.
    """

    def __init__(
        self,
        service: ReconstructionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        scan_root: str | Path | None = None,
        retry_after_s: float = 1.0,
        scan_cache_size: int = 8,
        own_service: bool = False,
    ) -> None:
        if scan_cache_size < 1:
            raise ValueError(f"scan_cache_size must be >= 1, got {scan_cache_size}")
        self.service = service
        self.scan_root = Path(scan_root) if scan_root is not None else None
        self.retry_after_s = float(retry_after_s)
        self.scan_cache_size = int(scan_cache_size)
        self._own_service = own_service
        self._scan_lock = threading.Lock()
        self._scan_cache: OrderedDict[tuple[str, int], ScanData] = OrderedDict()
        self._coord_lock = threading.Lock()
        self._coordinator = None  # lazy ShardCoordinator (first group submit)
        handler = type("BoundHandler", (_Handler,), {"gateway": self})
        self.server = ThreadingHTTPServer((host, int(port)), handler)
        self.server.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpGateway":
        """Serve in a background thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.server.serve_forever,
                name="repro-http-gateway",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI mode)."""
        self.server.serve_forever()

    def close(self) -> None:
        """Stop accepting requests; join the server thread."""
        if self._closed:
            return
        self._closed = True
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self._own_service:
            self.service.close()

    def __enter__(self) -> "HttpGateway":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- shard groups ----------------------------------------------------
    @property
    def coordinator(self):
        """The gateway's :class:`~repro.multires.shards.ShardCoordinator`.

        Built on first use so gateways that never see a sharded submission
        pay nothing; imported lazily to keep the service import graph free
        of the shards module at start-up.
        """
        with self._coord_lock:
            if self._coordinator is None:
                from repro.multires.shards import ShardCoordinator

                self._coordinator = ShardCoordinator(self.service)
            return self._coordinator

    def has_group(self, job_id: str) -> bool:
        """Whether ``job_id`` names a shard group (never touches the service)."""
        with self._coord_lock:
            coord = self._coordinator
        return coord is not None and coord.has(job_id)

    # -- scan resolution -------------------------------------------------
    def _resolve(self, scan: str) -> Path:
        path = Path(scan)
        if not path.is_absolute() and self.scan_root is not None:
            path = self.scan_root / path
        return path

    def load_scan(self, scan: str) -> ScanData:
        """The scan named by a submission, via the (path, mtime) cache."""
        path = self._resolve(scan)
        stat = path.stat()  # raises FileNotFoundError -> 400 at the handler
        key = (str(path), stat.st_mtime_ns)
        with self._scan_lock:
            cached = self._scan_cache.get(key)
            if cached is not None:
                self._scan_cache.move_to_end(key)
                return cached
        loaded = _load_scan(path)
        with self._scan_lock:
            # Drop entries for stale mtimes of the same file.
            for k in [k for k in self._scan_cache if k[0] == key[0] and k != key]:
                del self._scan_cache[k]
            entry = self._scan_cache.setdefault(key, loaded)
            self._scan_cache.move_to_end(key)
            while len(self._scan_cache) > self.scan_cache_size:
                self._scan_cache.popitem(last=False)
            return entry

    def load_volume(self, scan: str) -> list[ScanData]:
        """The volume scan (per-slice stack) named by a sharded submission.

        Uncached: volume submissions are rare relative to the single-scan
        load-generator workload the (path, mtime) cache exists for, and the
        stacks are large.
        """
        return _load_volume_scan(self._resolve(scan))

    # -- metrics ---------------------------------------------------------
    @property
    def rec(self) -> MetricsRecorder:
        return self.service.rec

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /metrics``."""
        return self.rec.to_prometheus(
            gauges={
                "queue_depth": self.service.queue.depth,
                "jobs_known": len(self.service.jobs),
                "tombstones": self.service.tombstone_count,
            }
        )


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request against the gateway (a fresh thread per request)."""

    #: bound by HttpGateway.__init__ via a subclass attribute
    gateway: HttpGateway

    server_version = "repro-gateway/1.0"
    protocol_version = "HTTP/1.1"  # keep-alive: load generators reuse sockets

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr logging; metrics carry the tallies."""

    def _send_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.gateway.rec.count(f"http.status.{code}")

    def _send_json(
        self, code: int, doc: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode()
        self._send_bytes(code, body, "application/json", headers)

    def _send_error_json(
        self, code: int, error: str, headers: dict[str, str] | None = None, **extra
    ) -> None:
        self._send_json(code, {"error": error, **extra}, headers)

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        doc = json.loads(raw.decode() or "{}")
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _query(self) -> dict[str, str]:
        if "?" not in self.path:
            return {}
        out = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            if "=" in pair:
                k, v = pair.split("=", 1)
                out[k] = v
        return out

    @property
    def _route(self) -> str:
        return self.path.split("?", 1)[0]

    # -- dispatch --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self.gateway.rec.count("http.requests")
        route = self._route
        if route == "/metrics":
            return self._get_metrics()
        if route == "/healthz":
            # "degraded" is advisory (still serving): checkpoint-write
            # degradation or hung-worker kills, with reasons listed.
            return self._send_json(200, self.gateway.service.health())
        m = _RESULT_PATH.match(route)
        if m:
            return self._get_result(m.group("job_id"))
        m = _JOB_PATH.match(route)
        if m:
            return self._get_status(m.group("job_id"))
        self._send_error_json(404, f"no such route: GET {route}")

    def do_POST(self) -> None:  # noqa: N802
        self.gateway.rec.count("http.requests")
        if self._route != "/jobs":
            return self._send_error_json(404, f"no such route: POST {self._route}")
        self._post_job()

    def do_DELETE(self) -> None:  # noqa: N802
        self.gateway.rec.count("http.requests")
        m = _JOB_PATH.match(self._route)
        if not m:
            return self._send_error_json(404, f"no such route: DELETE {self._route}")
        self._delete_job(m.group("job_id"))

    # -- endpoints -------------------------------------------------------
    def _post_job(self) -> None:
        gw = self.gateway
        try:
            doc = self._read_json_body()
        except (ValueError, UnicodeDecodeError) as exc:
            return self._send_error_json(400, f"invalid JSON body: {exc}")
        try:
            driver = doc["driver"]
            scan_name = doc["scan"]
        except KeyError as exc:
            return self._send_error_json(400, f"missing required field {exc}")
        unknown = set(doc) - {"driver", "scan", "params", "priority", "job_id", "shards"}
        if unknown:
            return self._send_error_json(400, f"unknown fields {sorted(unknown)}")
        if doc.get("shards") is not None:
            return self._post_group(doc, driver, scan_name)
        try:
            spec = JobSpec(
                driver=driver,
                scan=gw.load_scan(scan_name),
                params=dict(doc.get("params") or {}),
                priority=int(doc.get("priority") or 0),
                job_id=doc.get("job_id"),
            )
        except (OSError, ValueError, TypeError) as exc:
            return self._send_error_json(400, f"bad submission: {exc}")
        try:
            job_id = gw.service.submit(spec)
        except AdmissionError as exc:
            gw.rec.count("http.jobs_rejected_429")
            return self._send_error_json(
                429,
                str(exc),
                headers={"Retry-After": f"{gw.retry_after_s:g}"},
                depth=exc.depth,
                max_depth=exc.max_depth,
            )
        except QueueClosedError as exc:
            gw.rec.count("http.jobs_rejected_503")
            # 503 is backpressure too (drain/restart windows): give clients
            # the same Retry-After hint the 429 path sends.
            return self._send_error_json(
                503, str(exc), headers={"Retry-After": f"{gw.retry_after_s:g}"}
            )
        except JobStateError as exc:
            return self._send_error_json(409, str(exc))
        except (TypeError, ValueError) as exc:  # unserialisable params etc.
            return self._send_error_json(400, f"bad submission: {exc}")
        except RuntimeError as exc:  # service closed
            return self._send_error_json(
                503, str(exc), headers={"Retry-After": f"{gw.retry_after_s:g}"}
            )
        self._send_json(
            201,
            {"job_id": job_id, "state": gw.service.status(job_id)["state"]},
            headers={"Location": f"/jobs/{job_id}"},
        )

    def _post_group(self, doc: dict[str, Any], driver: str, scan_name: str) -> None:
        """Submit a shard group (``"shards"`` object present in the body)."""
        gw = self.gateway
        shards = doc["shards"]
        if not isinstance(shards, dict):
            return self._send_error_json(400, "shards must be a JSON object")
        known = {"mode", "n_shards", "halo", "rounds", "sweeps_per_round", "seed"}
        unknown = set(shards) - known
        if unknown:
            return self._send_error_json(400, f"unknown shards fields {sorted(unknown)}")
        mode = shards.get("mode")
        if mode not in ("slices", "rows"):
            return self._send_error_json(
                400, f"shards.mode must be 'slices' or 'rows', got {mode!r}"
            )
        params = dict(doc.get("params") or {})
        priority = int(doc.get("priority") or 0)
        group_id = doc.get("job_id")
        coord = gw.coordinator
        try:
            if mode == "slices":
                extra = set(shards) - {"mode"}
                if extra:
                    return self._send_error_json(
                        400, f"shards fields {sorted(extra)} only apply to mode 'rows'"
                    )
                scans = gw.load_volume(scan_name)
                gid = coord.submit_volume(
                    scans,
                    driver=driver,
                    params=params,
                    priority=priority,
                    group_id=group_id,
                )
            else:
                if driver != "icd":
                    return self._send_error_json(
                        400,
                        f"rows-mode sharding runs sequential ICD children; "
                        f"driver must be 'icd', got {driver!r}",
                    )
                gid = coord.submit_sharded(
                    gw.load_scan(scan_name),
                    params=params,
                    n_shards=int(shards.get("n_shards", 2)),
                    halo=int(shards.get("halo", 1)),
                    rounds=int(shards.get("rounds", 2)),
                    sweeps_per_round=int(shards.get("sweeps_per_round", 1)),
                    seed=int(shards.get("seed", 0)),
                    priority=priority,
                    group_id=group_id,
                )
        except (OSError, ValueError, TypeError) as exc:
            return self._send_error_json(400, f"bad sharded submission: {exc}")
        except AdmissionError as exc:
            gw.rec.count("http.jobs_rejected_429")
            return self._send_error_json(
                429, str(exc), headers={"Retry-After": f"{gw.retry_after_s:g}"}
            )
        except (QueueClosedError, RuntimeError) as exc:
            gw.rec.count("http.jobs_rejected_503")
            return self._send_error_json(
                503, str(exc), headers={"Retry-After": f"{gw.retry_after_s:g}"}
            )
        self._send_json(
            201,
            {"job_id": gid, "state": coord.status(gid)["state"], "group": True},
            headers={"Location": f"/jobs/{gid}"},
        )

    def _get_status(self, job_id: str) -> None:
        if self.gateway.has_group(job_id):
            return self._send_json(200, self.gateway.coordinator.status(job_id))
        try:
            snap = self.gateway.service.status(job_id)
        except EvictedJobError as exc:
            return self._send_error_json(410, str(exc), evicted=True)
        except UnknownJobError:
            return self._send_error_json(404, f"unknown job id {job_id!r}")
        self._send_json(200, snap)

    def _get_result(self, job_id: str) -> None:
        gw = self.gateway
        if gw.has_group(job_id):
            return self._get_group_result(job_id)
        try:
            job = gw.service.job(job_id)
        except EvictedJobError as exc:
            return self._send_error_json(410, str(exc), evicted=True)
        except UnknownJobError:
            return self._send_error_json(404, f"unknown job id {job_id!r}")
        timeout = self._query().get("timeout")
        if timeout is not None:
            try:
                # Capped: a handler thread must not be parkable forever by a
                # client-supplied wait.
                job.wait(min(max(0.0, float(timeout)), 300.0))
            except ValueError:
                return self._send_error_json(400, f"bad timeout {timeout!r}")
        state = job.state
        if state is JobState.FAILED:
            return self._send_error_json(500, f"job failed: {job.error}", state=state.value)
        if state is JobState.CANCELLED:
            return self._send_error_json(410, "job was cancelled", state=state.value)
        if state is not JobState.DONE or job.result is None:
            return self._send_error_json(
                409,
                f"job is {state.value}; result not available yet",
                headers={"Retry-After": f"{gw.retry_after_s:g}"},
                state=state.value,
            )
        # save_reconstruction writes atomically to a path; spool through a
        # temp file to reuse the exact on-disk npz container byte format.
        with tempfile.TemporaryDirectory(prefix="repro-http-") as tmp:
            path = Path(tmp) / "result.npz"
            save_reconstruction(
                path,
                job.result.image,
                getattr(job.result, "history", None),
                metadata={
                    "job_id": job_id,
                    "driver": job.spec.driver,
                    "from_cache": job.from_cache,
                },
            )
            body = path.read_bytes()
        self._send_bytes(
            200,
            body,
            "application/octet-stream",
            headers={
                "Content-Disposition": f'attachment; filename="{job_id}.npz"',
                "X-Repro-From-Cache": str(job.from_cache).lower(),
            },
        )

    def _get_group_result(self, job_id: str) -> None:
        """Stream a group's stitched volume (same npz container as jobs)."""
        gw = self.gateway
        group = gw.coordinator.group(job_id)
        timeout = self._query().get("timeout")
        if timeout is not None:
            try:
                group.wait(min(max(0.0, float(timeout)), 300.0))
            except ValueError:
                return self._send_error_json(400, f"bad timeout {timeout!r}")
        snap = group.snapshot()
        state = snap["state"]
        if state == "FAILED":
            return self._send_error_json(500, f"group failed: {group.error}", state=state)
        if state == "CANCELLED":
            return self._send_error_json(410, "group was cancelled", state=state)
        if state != "DONE" or group.result is None:
            return self._send_error_json(
                409,
                f"group is {state}; stitched result not available yet",
                headers={"Retry-After": f"{gw.retry_after_s:g}"},
                state=state,
            )
        entry = group.result
        with tempfile.TemporaryDirectory(prefix="repro-http-") as tmp:
            path = Path(tmp) / "result.npz"
            save_reconstruction(
                path,
                entry.image,
                entry.history,
                metadata={"job_id": job_id, **entry.metadata},
            )
            body = path.read_bytes()
        self._send_bytes(
            200,
            body,
            "application/octet-stream",
            headers={"Content-Disposition": f'attachment; filename="{job_id}.npz"'},
        )

    def _delete_job(self, job_id: str) -> None:
        if self.gateway.has_group(job_id):
            cancelled = self.gateway.coordinator.cancel(job_id)
            return self._send_json(202, {"job_id": job_id, "cancel_requested": cancelled})
        try:
            cancelled = self.gateway.service.cancel(job_id)
        except EvictedJobError as exc:
            return self._send_error_json(410, str(exc), evicted=True)
        except UnknownJobError:
            return self._send_error_json(404, f"unknown job id {job_id!r}")
        self._send_json(202, {"job_id": job_id, "cancel_requested": cancelled})

    def _get_metrics(self) -> None:
        self._send_bytes(200, self.gateway.metrics_text().encode(), _PROMETHEUS_CONTENT_TYPE)

"""File/directory job intake: the persistence layer behind ``repro serve``.

A *queue directory* gives the in-process service a crash-safe, on-disk
protocol that plain shell tools (and the ``repro submit/status/cancel``
subcommands) can speak:

.. code-block:: text

    <queue_dir>/
      incoming/<job_id>.json    # dropped-off job specs, picked up by serve
      cache/                    # persistent content-addressed result cache
      jobs/<job_id>/
        spec.json               # the accepted spec (moved from incoming/)
        status.json             # atomic status snapshot (serve loop writes)
        result.npz              # the reconstruction, once DONE
        checkpoints/            # the job's resumable snapshots
        cancel                  # drop this file to request cancellation

A spec file names the driver, a scan file (``repro.io.save_scan`` format),
driver params, and a priority::

    {"driver": "psv_icd", "scan": "scan.npz",
     "params": {"max_equits": 4.0, "sv_side": 8}, "priority": 5}

Crash recovery: on startup every ``jobs/<id>`` whose status is missing or
non-terminal is resubmitted **with its original job id**, so its
checkpoint directory is found and the job resumes from its last snapshot —
a SIGKILL'd server rerun with the same queue directory completes every
in-flight job bit-identically to an uninterrupted run.

Bad specs never crash the serve loop.  A spec that cannot be submitted
(unknown keys, unparseable JSON, an unreadable scan file) is *quarantined*:
a terminal FAILED ``status.json`` naming the error is published for it and
the loop moves on — and because FAILED is terminal, recovery skips it on
every later restart instead of re-raising forever.  A spec rejected by
admission control (the queue is full) is not an error at all: it stays
accepted and is resubmitted on a later poll, once the backlog drains.
Cancel sentinels are consumed once their job is terminal (renamed
``cancel.done``), so a finished job is not re-cancelled on every poll.

Only the serve loop writes ``status.json`` (single-writer, temp-file +
``os.replace``), so readers never observe a torn snapshot.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from pathlib import Path
from typing import Any

from repro.io import load_scan, save_reconstruction
from repro.observability import MetricsRecorder
from repro.service.faults import check_disk_fault
from repro.service.jobs import TERMINAL_STATES, Job, JobSpec, JobState, JobStateError
from repro.service.queue import AdmissionError, QueueClosedError
from repro.service.service import ReconstructionService

__all__ = [
    "DirectoryService",
    "write_job_spec",
    "read_status",
    "request_cancel",
]

_SPEC_KEYS = frozenset({"driver", "scan", "params", "priority", "fault"})


# ----------------------------------------------------------------------
# Client-side helpers (used by ``repro submit/status/cancel``)
# ----------------------------------------------------------------------
def write_job_spec(
    queue_dir: str | Path,
    job_id: str,
    *,
    driver: str,
    scan_path: str | Path,
    params: dict[str, Any] | None = None,
    priority: int = 0,
    fault: dict[str, Any] | None = None,
) -> Path:
    """Drop a job spec into ``incoming/`` for the server to pick up."""
    queue_dir = Path(queue_dir)
    incoming = queue_dir / "incoming"
    incoming.mkdir(parents=True, exist_ok=True)
    doc = {
        "driver": driver,
        "scan": str(scan_path),
        "params": dict(params or {}),
        "priority": int(priority),
    }
    if fault:
        doc["fault"] = dict(fault)
    final = incoming / f"{job_id}.json"
    tmp = final.with_name(f".{final.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, final)
    return final


def read_status(queue_dir: str | Path, job_id: str) -> dict[str, Any] | None:
    """The last published status snapshot for ``job_id``, or None."""
    path = Path(queue_dir) / "jobs" / job_id / "status.json"
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return None


def request_cancel(queue_dir: str | Path, job_id: str) -> Path:
    """Drop the ``cancel`` sentinel file for ``job_id``."""
    job_dir = Path(queue_dir) / "jobs" / job_id
    job_dir.mkdir(parents=True, exist_ok=True)
    sentinel = job_dir / "cancel"
    sentinel.touch()
    return sentinel


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class DirectoryService:
    """Serve reconstructions out of a queue directory.

    Wraps a :class:`~repro.service.service.ReconstructionService` whose
    checkpoints and result cache live *inside* the queue directory, and
    runs the intake loop: pick up ``incoming/`` specs, honour ``cancel``
    sentinels, publish ``status.json``, persist results.
    """

    def __init__(
        self,
        queue_dir: str | Path,
        *,
        n_workers: int = 2,
        worker_model: str = "thread",
        heartbeat_timeout_s: float | None = None,
        job_deadline_s: float | None = None,
        job_ttl_s: float | None = None,
        max_queue_depth: int | None = None,
        checkpoint_every: int = 1,
        metrics: MetricsRecorder | None = None,
        poll_s: float = 0.05,
    ) -> None:
        self.queue_dir = Path(queue_dir)
        self.incoming = self.queue_dir / "incoming"
        self.jobs_dir = self.queue_dir / "jobs"
        for d in (self.incoming, self.jobs_dir):
            d.mkdir(parents=True, exist_ok=True)
        self.poll_s = float(poll_s)
        self.service = ReconstructionService(
            n_workers=n_workers,
            worker_model=worker_model,
            heartbeat_timeout_s=heartbeat_timeout_s,
            job_deadline_s=job_deadline_s,
            job_ttl_s=job_ttl_s,
            max_queue_depth=max_queue_depth,
            checkpoint_root=self.jobs_dir,
            cache_dir=self.queue_dir / "cache",
            checkpoint_every=checkpoint_every,
            metrics=metrics,
            start=True,
        )
        #: status/result writes that failed with OSError (retried next poll)
        self.status_write_failures = 0
        self.result_write_failures = 0
        self._persisted: set[str] = set()
        self._deferred: dict[str, Path] = {}  # admission-rejected, retry next poll
        self._recover()

    # -- crash recovery --------------------------------------------------
    def _recover(self) -> None:
        """Resubmit every job a previous life left non-terminal.

        Quarantined specs carry a terminal FAILED status, so a restart
        skips them like any other finished job instead of retrying (and
        re-failing on) them forever.
        """
        for spec_path in sorted(self.jobs_dir.glob("*/spec.json")):
            job_id = spec_path.parent.name
            status = read_status(self.queue_dir, job_id)
            if status is not None and status.get("state") in {s.value for s in TERMINAL_STATES}:
                continue
            self._submit_accepted(spec_path, job_id)

    # -- intake ----------------------------------------------------------
    def _submit_spec_file(self, spec_path: Path, job_id: str) -> None:
        doc = json.loads(spec_path.read_text())
        unknown = set(doc) - _SPEC_KEYS
        if unknown:
            raise ValueError(f"{spec_path}: unknown spec keys {sorted(unknown)}")
        scan_path = Path(doc["scan"])
        if not scan_path.is_absolute():
            scan_path = self.queue_dir / scan_path
        spec = JobSpec(
            driver=doc["driver"],
            scan=load_scan(scan_path),
            params=dict(doc.get("params", {})),
            priority=int(doc.get("priority", 0)),
            job_id=job_id,
            fault=doc.get("fault"),
        )
        self.service.submit(spec)
        self._publish_status(self.service.job(job_id))

    def _submit_accepted(self, spec_path: Path, job_id: str) -> str:
        """Submit an accepted spec without ever crashing the serve loop.

        Returns the outcome: ``"submitted"`` (now pending), ``"deferred"``
        (queue full — retried on a later poll), ``"quarantined"`` (the spec
        is unrunnable — published as terminal FAILED), or ``"skipped"``
        (duplicate id of a currently-active job, which owns the status).
        """
        try:
            self._submit_spec_file(spec_path, job_id)
            return "submitted"
        except (AdmissionError, QueueClosedError):
            # Queue full *or* closed: the spec stays accepted and is retried
            # later — a closing service must not quarantine valid work that a
            # restarted one (same queue dir) would run fine.
            self._deferred[job_id] = spec_path
            return "deferred"
        except JobStateError:
            return "skipped"
        except Exception as exc:
            self._quarantine(job_id, exc)
            return "quarantined"

    def _quarantine(self, job_id: str, exc: Exception) -> None:
        """Publish a terminal FAILED status for an unrunnable accepted spec."""
        self._write_status(
            job_id,
            {
                "job_id": job_id,
                "state": JobState.FAILED.value,
                "error": f"{type(exc).__name__}: {exc}",
                "quarantined": True,
                "updated_at": time.time(),
            },
        )

    def poll_incoming(self) -> list[str]:
        """Accept all pending ``incoming/`` specs; returns newly-pending ids.

        Specs previously deferred by admission control are retried first
        (they were accepted earlier); then new arrivals are accepted.  A
        spec that fails to submit is quarantined or re-deferred — the poll
        itself never raises.
        """
        accepted = []
        for job_id, spec_path in sorted(self._deferred.items()):
            del self._deferred[job_id]
            if self._submit_accepted(spec_path, job_id) == "submitted":
                accepted.append(job_id)
        for path in sorted(self.incoming.glob("*.json")):
            job_id = path.stem
            job_dir = self.jobs_dir / job_id
            job_dir.mkdir(parents=True, exist_ok=True)
            spec_path = job_dir / "spec.json"
            os.replace(path, spec_path)  # accept before submit: crash-safe
            if self._submit_accepted(spec_path, job_id) == "submitted":
                accepted.append(job_id)
        return accepted

    def poll_cancels(self) -> None:
        """Honour every pending ``cancel`` sentinel.

        ``request_cancel`` on a terminal job is a no-op returning False (it
        never raises), and once the job is terminal the sentinel is
        consumed — renamed ``cancel.done`` — so later polls stop
        re-cancelling finished jobs.
        """
        for sentinel in self.jobs_dir.glob("*/cancel"):
            job_id = sentinel.parent.name
            try:
                job = self.service.job(job_id)
            except KeyError:
                continue  # unknown or never-submitted job; leave the file as a record
            job.request_cancel()
            if job.terminal:
                os.replace(sentinel, sentinel.with_name("cancel.done"))

    # -- publishing -------------------------------------------------------
    def _write_status(self, job_id: str, snap: dict[str, Any]) -> bool:
        """Atomically publish one status snapshot; False on a disk fault.

        A failed write leaves the previous snapshot in place (readers see
        stale-but-whole state) and is retried on the next publish round —
        the intake loop is its own retry schedule, so no backoff here.
        """
        final = self.jobs_dir / job_id / "status.json"
        tmp = final.with_name(f".{final.name}.tmp-{os.getpid()}")
        try:
            final.parent.mkdir(parents=True, exist_ok=True)
            check_disk_fault(final.parent)
            tmp.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, final)
        except OSError:
            self.status_write_failures += 1
            with contextlib.suppress(OSError):
                tmp.unlink(missing_ok=True)
            return False
        return True

    def _publish_status(self, job: Job) -> None:
        snap = job.snapshot()
        snap["updated_at"] = time.time()
        self._write_status(job.job_id, snap)

    def publish(self) -> None:
        """Write every job's current status; persist newly finished results."""
        for job in self.service.jobs:
            self._publish_status(job)
            if (
                job.state is JobState.DONE
                and job.job_id not in self._persisted
                and job.result is not None
            ):
                try:
                    check_disk_fault(self.jobs_dir / job.job_id)
                    save_reconstruction(
                        self.jobs_dir / job.job_id / "result.npz",
                        job.result.image,
                        getattr(job.result, "history", None),
                        metadata={
                            "job_id": job.job_id,
                            "driver": job.spec.driver,
                            "from_cache": job.from_cache,
                        },
                    )
                except OSError:
                    # The in-memory result is intact; not marking the job
                    # persisted makes the next publish round the retry.
                    self.result_write_failures += 1
                else:
                    self._persisted.add(job.job_id)

    # -- the loop ---------------------------------------------------------
    def step(self) -> None:
        """One intake round: accept, cancel, publish."""
        self.poll_incoming()
        self.poll_cancels()
        self.publish()

    def run(
        self,
        *,
        drain: bool = False,
        max_seconds: float | None = None,
    ) -> bool:
        """Serve until stopped.

        With ``drain=True`` the loop exits once every known job is terminal
        and ``incoming/`` is empty (True = fully drained).  ``max_seconds``
        bounds the loop either way (False on timeout).
        """
        deadline = None if max_seconds is None else time.monotonic() + max_seconds
        while True:
            self.step()
            if drain:
                jobs = self.service.jobs
                if (
                    not any(self.incoming.glob("*.json"))
                    and not self._deferred
                    and all(j.terminal for j in jobs)
                ):
                    self.publish()
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_s)

    def close(self) -> None:
        """Publish final statuses and stop the workers."""
        self.publish()
        self.service.close()

    def __enter__(self) -> "DirectoryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

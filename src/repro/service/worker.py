"""Process-backed job execution: the child side of ``worker_model="process"``.

Thread workers (the default) serialise on the GIL whenever a job's hot loop
is NumPy-light — which is exactly what the per-voxel ICD sweep is — so a
scheduler configured with ``worker_model="process"`` runs each
:func:`~repro.service.runner.run_job` in a worker *subprocess* instead.
This module is that subprocess: :func:`process_worker_main` is the
``multiprocessing.Process`` target, and the protocol back to the scheduler
is deliberately tiny:

* **progress** flows child → parent over a one-way pipe as small tuples
  (``("iteration", i, dur)`` / ``("checkpoint", i, dur)``), re-emitted by
  the parent as the same :class:`~repro.service.progress.ProgressEvent`
  stream thread workers produce;
* **cancel** flows parent → child through a shared
  ``multiprocessing.Event`` checked at every iteration boundary (the same
  cooperative point the thread model uses), raising
  :class:`~repro.service.jobs.JobCancelledError` out of the driver loop;
* **the result** never crosses the pipe: the child persists it with the
  repo's npz reconstruction container (``result-worker.npz`` next to the
  job's ``checkpoints/`` dir, atomic write) and sends a one-line verdict;
  the parent loads the container back.  Volumes can be large; verdicts
  are not;
* **crashes need no protocol at all**: a SIGKILL'd child simply never
  sends a verdict.  The parent notices the dead process and respawns it —
  ``run_job`` resumes from the job's newest checkpoint bit-identically,
  exactly like the service-restart kill drill, except the service never
  went down.

Children are forked where the platform allows it, so the parent's
process-wide system-matrix cache (and any warmed-up JIT state) is
inherited copy-on-write instead of being rebuilt per job.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

from repro.io import load_reconstruction, save_reconstruction
from repro.observability import MetricsRecorder, Span
from repro.service.cache import CachedResult
from repro.service.jobs import JobCancelledError, JobSpec
from repro.service.runner import run_job

__all__ = [
    "mp_context",
    "worker_result_path",
    "load_worker_result",
    "process_worker_main",
]

#: Basename of the child-written result container (sibling of checkpoints/).
_RESULT_BASENAME = "result-worker.npz"


def mp_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context worker processes are spawned from.

    ``fork`` when the platform offers it: children inherit the parent's
    built system matrices and compiled kernels copy-on-write, so per-job
    startup is a process clone, not a fresh interpreter.  Elsewhere the
    platform default (``spawn``) is used — job specs and results already
    travel by pickle/file, so only startup latency differs.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def worker_result_path(checkpoint_dir: str | Path) -> Path:
    """Where a worker process deposits its finished reconstruction."""
    return Path(checkpoint_dir).parent / _RESULT_BASENAME


def load_worker_result(checkpoint_dir: str | Path) -> CachedResult:
    """Load the child-written result container back into the parent.

    Raises :class:`~repro.io.CorruptFileError` for a torn file (the child
    writes atomically, so this indicates disk-level trouble, and the
    scheduler files the job FAILED with the error) and
    :class:`FileNotFoundError` if the child claimed success without
    writing — both are worker-side failures the parent must surface.
    """
    image, history, metadata = load_reconstruction(worker_result_path(checkpoint_dir))
    return CachedResult(image=image, history=history, metadata=metadata)


class _RelayRecorder(MetricsRecorder):
    """Child-side recorder: pipes progress out, honours the cancel flag.

    The process-model twin of :class:`~repro.service.progress.ProgressRecorder`:
    the drivers' ``iteration`` / ``checkpoint_save`` span closes become pipe
    messages instead of direct ``Job`` mutations (the ``Job`` object lives in
    the parent), and the cancel check reads the shared event the parent sets
    when ``request_cancel`` arrives.
    """

    def __init__(self, conn, cancel_event) -> None:
        super().__init__()
        self._conn = conn
        self._cancel = cancel_event

    def _send(self, message: tuple) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            # An orphaned child keeps computing: checkpoints make the work
            # durable, and the next service life resumes from them.
            pass

    def _pop(self, span: Span) -> None:
        super()._pop(span)
        meta = span.meta or {}
        if span.name == "iteration":
            iteration = int(meta.get("index", 0))
            self._send(("iteration", iteration, span.duration))
            if self._cancel.is_set():
                raise JobCancelledError(f"cancelled at iteration {iteration}")
        elif span.name == "checkpoint_save":
            self._send(("checkpoint", int(meta.get("iteration", 0)), span.duration))


def process_worker_main(
    conn,
    cancel_event,
    spec: JobSpec,
    checkpoint_dir: str,
    checkpoint_every: int,
    driver_defaults: dict | None,
) -> None:
    """Run one job in this worker process and report a verdict.

    The last message on ``conn`` is the verdict tuple —
    ``("done", counters)``, ``("cancelled", detail)``, or
    ``("failed", error)`` — after any number of progress tuples.  A crash
    (SIGKILL, segfault, OOM kill) sends nothing; the parent treats pipe
    EOF without a verdict as "respawn and resume from checkpoints".
    """
    try:
        recorder = _RelayRecorder(conn, cancel_event)
        try:
            result = run_job(
                spec,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                metrics=recorder,
                driver_defaults=driver_defaults,
            )
        except JobCancelledError as exc:
            conn.send(("cancelled", str(exc)))
            return
        except BaseException as exc:  # the verdict IS the error channel
            conn.send(("failed", f"{type(exc).__name__}: {exc}"))
            return
        try:
            # The job dir may not exist yet: a short job can finish before
            # its first checkpoint ever created it.
            result_path = worker_result_path(checkpoint_dir)
            result_path.parent.mkdir(parents=True, exist_ok=True)
            save_reconstruction(
                result_path,
                result.image,
                getattr(result, "history", None),
                metadata={"job_id": spec.job_id or "", "driver": spec.driver},
            )
        except BaseException as exc:
            # A save failure must be a FAILED verdict, not a silent clean
            # exit — the outer OSError guard below is only for a dead pipe.
            conn.send(("failed", f"result save failed: {type(exc).__name__}: {exc}"))
            return
        conn.send(("done", dict(recorder.counters)))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

"""Process-backed job execution: the child side of ``worker_model="process"``.

Thread workers (the default) serialise on the GIL whenever a job's hot loop
is NumPy-light — which is exactly what the per-voxel ICD sweep is — so a
scheduler configured with ``worker_model="process"`` runs each
:func:`~repro.service.runner.run_job` in a worker *subprocess* instead.
This module is that subprocess: :func:`process_worker_main` is the
``multiprocessing.Process`` target, and the protocol back to the scheduler
is deliberately tiny:

* **progress** flows child → parent over a one-way pipe as small tuples
  (``("iteration", i, dur)`` / ``("checkpoint", i, dur)``), re-emitted by
  the parent as the same :class:`~repro.service.progress.ProgressEvent`
  stream thread workers produce;
* **liveness** is a periodic ``("heartbeat", ts)`` tuple from a daemon
  thread, sent even while an iteration grinds — the parent's supervisor
  treats a quiet pipe (no message of *any* kind within
  ``heartbeat_timeout_s``) as a hung worker and SIGKILLs it, making an
  alive-but-stuck child indistinguishable from a crashed one within one
  timeout;
* **faults** flow as ``("fault", kind, detail)`` tuples — the disk-fault
  degradation transitions (``CHECKPOINT_DEGRADED`` / ``_RECOVERED``) the
  parent mirrors onto the job's event log;
* **cancel** flows parent → child through a shared
  ``multiprocessing.Event`` checked at every iteration boundary (the same
  cooperative point the thread model uses), raising
  :class:`~repro.service.jobs.JobCancelledError` out of the driver loop;
* **the result** never crosses the pipe: the child persists it with the
  repo's npz reconstruction container (``result-worker.npz`` next to the
  job's ``checkpoints/`` dir, atomic write) and sends a one-line verdict;
  the parent loads the container back.  Volumes can be large; verdicts
  are not.  A result write that keeps failing after retries is the one
  disk fault that is terminal: the verdict is a ``ResultPersistError``
  failure with the errno;
* **crashes need no protocol at all**: a SIGKILL'd child simply never
  sends a verdict.  The parent notices the dead process and respawns it —
  ``run_job`` resumes from the job's newest checkpoint bit-identically,
  exactly like the service-restart kill drill, except the service never
  went down;
* **a lost pipe is not a lost verdict**: if the verdict send fails after
  one retry, the child persists it as ``verdict.json`` next to the result
  container.  The parent consumes the file before (re)spawning, so a
  finished job is never re-run just because its pipe tore at the end.
  Only when the parent is *gone* (no file reader will ever come) does the
  orphaned child exit quietly — its checkpoints make the work durable for
  the next service life either way.

Children are forked where the platform allows it, so the parent's
process-wide system-matrix cache (and any warmed-up JIT state) is
inherited copy-on-write instead of being rebuilt per job.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from pathlib import Path

from repro.io import load_reconstruction, save_reconstruction
from repro.observability import MetricsRecorder, Span
from repro.service.cache import CachedResult
from repro.service.faults import check_disk_fault, next_backoff
from repro.service.jobs import JobCancelledError, JobSpec

__all__ = [
    "mp_context",
    "worker_result_path",
    "worker_verdict_path",
    "load_worker_result",
    "process_worker_main",
]

#: Basename of the child-written result container (sibling of checkpoints/).
_RESULT_BASENAME = "result-worker.npz"
#: Basename of the fallback verdict file (written only when the pipe died).
_VERDICT_BASENAME = "verdict.json"
#: Pipe-send retry pause — long enough to ride out a transient EAGAIN-ish
#: hiccup, short enough not to stall the iteration cadence.
_SEND_RETRY_S = 0.05
#: Result-write retry budget (attempts / backoff seed / cap, seconds).
_RESULT_RETRIES = 3
_RESULT_BACKOFF_S = (0.05, 0.5)


def mp_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context worker processes are spawned from.

    ``fork`` when the platform offers it: children inherit the parent's
    built system matrices and compiled kernels copy-on-write, so per-job
    startup is a process clone, not a fresh interpreter.  Elsewhere the
    platform default (``spawn``) is used — job specs and results already
    travel by pickle/file, so only startup latency differs.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def worker_result_path(checkpoint_dir: str | Path) -> Path:
    """Where a worker process deposits its finished reconstruction."""
    return Path(checkpoint_dir).parent / _RESULT_BASENAME


def worker_verdict_path(checkpoint_dir: str | Path) -> Path:
    """Where a worker persists its verdict when the pipe is gone."""
    return Path(checkpoint_dir).parent / _VERDICT_BASENAME


def load_worker_result(checkpoint_dir: str | Path) -> CachedResult:
    """Load the child-written result container back into the parent.

    Raises :class:`~repro.io.CorruptFileError` for a torn file (the child
    writes atomically, so this indicates disk-level trouble, and the
    scheduler files the job FAILED with the error) and
    :class:`FileNotFoundError` if the child claimed success without
    writing — both are worker-side failures the parent must surface.
    """
    image, history, metadata = load_reconstruction(worker_result_path(checkpoint_dir))
    return CachedResult(image=image, history=history, metadata=metadata)


class _RelayRecorder(MetricsRecorder):
    """Child-side recorder: pipes progress out, honours the cancel flag.

    The process-model twin of :class:`~repro.service.progress.ProgressRecorder`:
    the drivers' ``iteration`` / ``checkpoint_save`` span closes become pipe
    messages instead of direct ``Job`` mutations (the ``Job`` object lives in
    the parent), and the cancel check reads the shared event the parent sets
    when ``request_cancel`` arrives.

    Sends are serialised through a lock — the heartbeat thread and the
    driver loop share the pipe, and ``Connection.send`` is not thread-safe.
    A send that fails is retried once after a short pause; a second failure
    marks the pipe dead so every later send is a cheap no-op (an orphaned
    child keeps computing: checkpoints make the work durable, and the next
    service life resumes from them).
    """

    def __init__(self, conn, cancel_event) -> None:
        super().__init__()
        self._conn = conn
        self._cancel = cancel_event
        self._send_lock = threading.Lock()
        self._pipe_dead = False

    @property
    def pipe_dead(self) -> bool:
        """Whether the relay gave up on the pipe (parent gone or torn)."""
        return self._pipe_dead

    def send(self, message: tuple, *, retries: int = 1) -> bool:
        """Send ``message``; False if the pipe is (now) dead."""
        if self._pipe_dead:
            return False
        with self._send_lock:
            if self._pipe_dead:
                return False
            for attempt in range(retries + 1):
                try:
                    self._conn.send(message)
                    return True
                except (BrokenPipeError, OSError):
                    if attempt < retries:
                        time.sleep(_SEND_RETRY_S)
            self._pipe_dead = True
            return False

    def note_fault(self, kind: str, **detail) -> None:
        """Relay a fault transition (CHECKPOINT_DEGRADED/...) to the parent."""
        self.send(("fault", kind, detail))

    def _pop(self, span: Span) -> None:
        super()._pop(span)
        meta = span.meta or {}
        if span.name == "iteration":
            iteration = int(meta.get("index", 0))
            self.send(("iteration", iteration, span.duration))
            if self._cancel.is_set():
                raise JobCancelledError(f"cancelled at iteration {iteration}")
        elif span.name == "checkpoint_save" and not meta.get("suppressed"):
            self.send(("checkpoint", int(meta.get("iteration", 0)), span.duration))


def _heartbeat_loop(recorder: _RelayRecorder, stop: threading.Event, interval_s: float) -> None:
    """Send liveness beats until told to stop or the pipe dies.

    No retry on a beat: the next one is due in ``interval_s`` anyway, and
    retrying here would serialise behind a driver-loop send holding the
    lock.
    """
    while not stop.wait(interval_s):
        if not recorder.send(("heartbeat", time.time()), retries=0):
            return


def _persist_verdict(checkpoint_dir: str, kind: str, payload) -> None:
    """Write the fallback verdict file atomically; best-effort.

    Called only after the pipe is torn, so there is nobody to tell about a
    failure here — the parent will classify a missing file as a crash and
    resume from checkpoints, which is safe (just slower) even for a
    finished job.
    """
    path = worker_verdict_path(checkpoint_dir)
    tmp = path.with_suffix(".json.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps({"kind": kind, "payload": payload}))
        os.replace(tmp, path)
    except OSError:
        pass


def _deliver_verdict(
    recorder: _RelayRecorder, checkpoint_dir: str, kind: str, payload
) -> None:
    """Send the verdict over the pipe, falling back to the verdict file."""
    if not recorder.send((kind, payload), retries=1):
        _persist_verdict(checkpoint_dir, kind, payload)


def _save_result_with_retry(result_path: Path, result, spec: JobSpec) -> None:
    """Persist the result container, retrying transient OSErrors.

    The one write that must not degrade: after the retry budget the final
    ``OSError`` propagates and becomes a ``ResultPersistError`` verdict.
    """
    delay = _RESULT_BACKOFF_S[0]
    for attempt in range(_RESULT_RETRIES):
        try:
            # The job dir may not exist yet: a short job can finish before
            # its first checkpoint ever created it.
            result_path.parent.mkdir(parents=True, exist_ok=True)
            check_disk_fault(result_path.parent)
            save_reconstruction(
                result_path,
                result.image,
                getattr(result, "history", None),
                metadata={"job_id": spec.job_id or "", "driver": spec.driver},
            )
            return
        except OSError:
            if attempt + 1 >= _RESULT_RETRIES:
                raise
            delay = next_backoff(
                delay, base_s=_RESULT_BACKOFF_S[0], cap_s=_RESULT_BACKOFF_S[1]
            )
            time.sleep(delay)


def process_worker_main(
    conn,
    cancel_event,
    spec: JobSpec,
    checkpoint_dir: str,
    checkpoint_every: int,
    driver_defaults: dict | None,
    heartbeat_interval_s: float | None = None,
) -> None:
    """Run one job in this worker process and report a verdict.

    The last message on ``conn`` is the verdict tuple —
    ``("done", counters)``, ``("cancelled", detail)``, or
    ``("failed", error)`` — after any number of progress/heartbeat/fault
    tuples.  A crash (SIGKILL, segfault, OOM kill) sends nothing; the
    parent treats pipe EOF without a verdict (and without a persisted
    ``verdict.json``) as "respawn and resume from checkpoints".
    """
    from repro.service.runner import run_job  # deferred: keep fork startup lean

    recorder = _RelayRecorder(conn, cancel_event)
    hb_stop = threading.Event()
    hb_thread = None
    if heartbeat_interval_s is not None and heartbeat_interval_s > 0:
        hb_thread = threading.Thread(
            target=_heartbeat_loop,
            args=(recorder, hb_stop, float(heartbeat_interval_s)),
            name="worker-heartbeat",
            daemon=True,
        )
        hb_thread.start()
    try:
        try:
            result = run_job(
                spec,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                metrics=recorder,
                driver_defaults=driver_defaults,
            )
        except JobCancelledError as exc:
            _deliver_verdict(recorder, checkpoint_dir, "cancelled", str(exc))
            return
        except BaseException as exc:  # the verdict IS the error channel
            _deliver_verdict(
                recorder, checkpoint_dir, "failed", f"{type(exc).__name__}: {exc}"
            )
            return
        try:
            _save_result_with_retry(worker_result_path(checkpoint_dir), result, spec)
        except OSError as exc:
            # The terminal disk fault: the result is irreplaceable, so a
            # persistently unwritable container fails the job with the
            # errno in the detail (the parent raises the typed error).
            _deliver_verdict(
                recorder,
                checkpoint_dir,
                "failed",
                f"ResultPersistError[errno={exc.errno}]: {exc}",
            )
            return
        except BaseException as exc:
            # A non-disk save failure must still be a FAILED verdict, not a
            # silent clean exit.
            _deliver_verdict(
                recorder,
                checkpoint_dir,
                "failed",
                f"result save failed: {type(exc).__name__}: {exc}",
            )
            return
        _deliver_verdict(recorder, checkpoint_dir, "done", dict(recorder.counters))
    finally:
        hb_stop.set()
        if hb_thread is not None:
            hb_thread.join(timeout=1.0)
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

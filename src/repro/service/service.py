"""The service facade: submit / status / result / cancel / drain.

:class:`ReconstructionService` wires the queue, scheduler, and result cache
together behind the five-call API the CLI and the directory intake expose:

>>> svc = ReconstructionService(n_workers=2)
>>> job_id = svc.submit(JobSpec(driver="icd", scan=scan,
...                             params={"max_equits": 3.0}))
>>> svc.status(job_id)["state"]
'PENDING'
>>> image = svc.result(job_id).image      # blocks until DONE
>>> svc.close()

Construction with ``start=False`` leaves the workers parked so a batch of
submissions can be enqueued first — with one worker this makes the
execution order exactly the queue's (-priority, submission) order, which
the priority acceptance test pins down deterministically.
"""

from __future__ import annotations

import itertools
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from repro.observability import MetricsRecorder
from repro.service.cache import ResultCache, cache_key
from repro.service.jobs import (
    EvictedJobError,
    Job,
    JobCancelledError,
    JobFailedError,
    JobSpec,
    JobState,
    JobStateError,
    UnknownJobError,
)
from repro.service.progress import ProgressEvent
from repro.service.queue import JobQueue
from repro.service.reaper import JobReaper
from repro.service.runner import cache_key_defaults
from repro.service.scheduler import Scheduler

__all__ = ["ReconstructionService"]

#: Upper bound on remembered evicted ids: tombstones answer 410 instead of
#: 404, but an unbounded tombstone book would just move the leak.
_MAX_TOMBSTONES = 10_000


class ReconstructionService:
    """A multi-job reconstruction service over the three ICD drivers.

    Parameters
    ----------
    n_workers:
        Concurrently running jobs.
    worker_model:
        ``"thread"`` (default) or ``"process"`` — see
        :class:`~repro.service.scheduler.Scheduler`.  Process workers let
        CPU-bound jobs scale with cores instead of serialising on the
        GIL, and a SIGKILL'd worker subprocess resumes its job from
        checkpoints without the service going down.
    max_restarts:
        Process model only: crashed-worker respawns per job before FAILED.
    heartbeat_timeout_s:
        Process model only: SIGKILL a worker subprocess whose pipe stays
        silent this long while alive (hung, SIGSTOPped) and resume its
        job from checkpoints — see
        :class:`~repro.service.scheduler.Scheduler`.  ``None`` disables.
    job_deadline_s:
        Wall-clock budget per job across worker lives; over-deadline
        process workers are killed, thread workers stop cooperatively
        with :class:`~repro.service.jobs.JobDeadlineError`.  ``None``
        disables.
    job_ttl_s:
        TTL for *terminal* jobs in the registry: once a job has been DONE
        / FAILED / CANCELLED for this long, the
        :class:`~repro.service.reaper.JobReaper` evicts it; its id then
        raises :class:`~repro.service.jobs.EvictedJobError` (HTTP 410)
        instead of growing the registry forever.  ``None`` (default)
        disables eviction.
    reap_interval_s:
        Reaper sweep cadence (default: ``job_ttl_s / 4``, clamped).
    max_queue_depth:
        Admission-control bound on *pending* jobs (None = unbounded);
        :meth:`submit` raises
        :class:`~repro.service.queue.AdmissionError` past it.
    checkpoint_root:
        Root for per-job checkpoint directories.  Defaults to a private
        temporary directory removed on :meth:`close`; pass a real path to
        make jobs survive process restarts.
    cache_dir:
        Optional persistence directory for the result cache.
    checkpoint_every:
        Snapshot cadence (iterations) for every job.
    driver_defaults:
        Execution defaults merged under every job's spec params (spec
        wins) — see :class:`~repro.service.scheduler.Scheduler`.
    start:
        When False, workers stay parked until :meth:`start` — submissions
        queue up and then execute strictly in priority order.
    """

    def __init__(
        self,
        *,
        n_workers: int = 2,
        worker_model: str = "thread",
        max_restarts: int = 2,
        heartbeat_timeout_s: float | None = None,
        job_deadline_s: float | None = None,
        job_ttl_s: float | None = None,
        reap_interval_s: float | None = None,
        max_queue_depth: int | None = None,
        checkpoint_root: str | Path | None = None,
        cache_dir: str | Path | None = None,
        cache_memory_entries: int | None = None,
        checkpoint_every: int = 1,
        driver_defaults: dict | None = None,
        metrics: MetricsRecorder | None = None,
        on_progress: Callable[[ProgressEvent], None] | None = None,
        start: bool = True,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if checkpoint_root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            checkpoint_root = self._tmpdir.name
        self.checkpoint_root = Path(checkpoint_root)

        self.rec = metrics if metrics is not None else MetricsRecorder()
        self.queue = JobQueue(max_depth=max_queue_depth)
        self.cache = ResultCache(cache_dir, max_memory_entries=cache_memory_entries)
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        #: evicted-id tombstones (insertion-ordered; oldest dropped first)
        self._evicted: OrderedDict[str, None] = OrderedDict()
        self._seq = itertools.count()
        self._subscribers: dict[str, Callable[[ProgressEvent], None]] = {}
        self._on_progress = on_progress
        self.scheduler = Scheduler(
            self.queue,
            self.cache,
            checkpoint_root=self.checkpoint_root,
            n_workers=n_workers,
            worker_model=worker_model,
            max_restarts=max_restarts,
            heartbeat_timeout_s=heartbeat_timeout_s,
            job_deadline_s=job_deadline_s,
            checkpoint_every=checkpoint_every,
            driver_defaults=driver_defaults,
            metrics=self.rec,
            on_progress=self._dispatch_progress,
            clock=clock,
        )
        self.reaper = JobReaper(
            self, job_ttl_s=job_ttl_s, interval_s=reap_interval_s
        )
        self._closed = False
        if start:
            self.start()

    # -- progress fan-out -----------------------------------------------
    def _dispatch_progress(self, event: ProgressEvent) -> None:
        subscriber = self._subscribers.get(event.job_id)
        if subscriber is not None:
            subscriber(event)
        if self._on_progress is not None:
            self._on_progress(event)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start (or restart) the worker pool and, when enabled, the reaper."""
        if self._closed:
            raise RuntimeError("service is closed")
        self.scheduler.start()
        self.reaper.start()

    def close(self) -> None:
        """Stop the workers, close the queue, release the temp checkpoint root."""
        if self._closed:
            return
        self._closed = True
        self.reaper.stop()
        self.scheduler.stop(wait=True, close=True)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ReconstructionService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- the five calls --------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        *,
        on_progress: Callable[[ProgressEvent], None] | None = None,
    ) -> str:
        """Enqueue a reconstruction; returns its job id.

        Raises :class:`~repro.service.queue.AdmissionError` when the
        pending queue is at capacity (the job is *not* registered).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        job_id = spec.job_id if spec.job_id is not None else uuid.uuid4().hex[:12]
        with self._jobs_lock:
            if job_id in self._jobs and not self._jobs[job_id].terminal:
                raise JobStateError(f"job id {job_id!r} is already active")
        # The key covers everything that determines iterates: the spec,
        # plus the execution model a backend default would impose on it
        # (fleets on different models must not share cache entries).
        key_params = {
            **cache_key_defaults(
                spec.driver, spec.params, self.scheduler.driver_defaults
            ),
            **spec.params,
        }
        job = Job(
            job_id,
            spec,
            seq=next(self._seq),
            cache_key=cache_key(spec.driver, spec.scan, key_params),
            clock=self._clock,
        )
        self.queue.put(job)  # Admission/QueueClosed errors propagate before registration
        with self._jobs_lock:
            self._jobs[job_id] = job
            # A resubmitted id supersedes its tombstone: the fresh job owns
            # the id again (stable-id crash recovery relies on this).
            self._evicted.pop(job_id, None)
        if on_progress is not None:
            self._subscribers[job_id] = on_progress
        self.rec.count("service.jobs_submitted")
        self.rec.count_max("service.queue_depth_peak", self.queue.depth)
        return job_id

    def job(self, job_id: str) -> Job:
        """The live :class:`Job` for ``job_id``.

        Raises :class:`EvictedJobError` for an id the TTL reaper evicted
        (a tombstone remains — HTTP 410) and plain
        :class:`UnknownJobError` for an id never seen (HTTP 404).
        """
        with self._jobs_lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                if job_id in self._evicted:
                    raise EvictedJobError(
                        f"job {job_id!r} finished and was evicted after its TTL"
                    ) from None
                raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> dict[str, Any]:
        """JSON-ready status snapshot of one job."""
        return self.job(job_id).snapshot()

    def result(self, job_id: str, timeout: float | None = None):
        """Block until the job finishes; return its result object.

        Raises :class:`JobFailedError` / :class:`JobCancelledError` for the
        failure states and :class:`TimeoutError` when ``timeout`` expires
        first.
        """
        job = self.job(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state.value} after {timeout}s")
        if job.state is JobState.FAILED:
            raise JobFailedError(f"job {job_id} failed: {job.error}")
        if job.state is JobState.CANCELLED:
            raise JobCancelledError(f"job {job_id} was cancelled")
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; False if the job already finished.

        Pending jobs are dropped when a worker reaches them; running jobs
        stop cooperatively at the next iteration boundary.
        """
        return self.job(job_id).request_cancel()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job is terminal; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            if not job.wait(remaining):
                return False
        return True

    # -- eviction (driven by the JobReaper) ------------------------------
    def evict_terminal(self, *, older_than_s: float) -> list[str]:
        """Evict terminal jobs finished at least ``older_than_s`` ago.

        Non-terminal jobs are never evicted regardless of age.  Evicted
        ids leave a bounded tombstone (so :meth:`job` raises
        :class:`EvictedJobError`, not plain unknown), their progress
        subscribers are dropped, and ``service.jobs_evicted`` counts the
        evictions.  Returns the evicted ids.
        """
        now = self._clock()
        evicted: list[str] = []
        with self._jobs_lock:
            for job_id, job in list(self._jobs.items()):
                if not job.terminal or job.finished_at is None:
                    continue
                if now - job.finished_at < older_than_s:
                    continue
                del self._jobs[job_id]
                self._evicted[job_id] = None
                self._evicted.move_to_end(job_id)
                evicted.append(job_id)
                self._subscribers.pop(job_id, None)
            while len(self._evicted) > _MAX_TOMBSTONES:
                self._evicted.popitem(last=False)
        if evicted:
            self.rec.count("service.jobs_evicted", len(evicted))
        return evicted

    @property
    def tombstone_count(self) -> int:
        """Evicted ids currently remembered (answering 410 instead of 404)."""
        with self._jobs_lock:
            return len(self._evicted)

    # -- introspection ---------------------------------------------------
    @property
    def jobs(self) -> list[Job]:
        """All jobs the service knows about, in submission order."""
        with self._jobs_lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def health(self) -> dict[str, Any]:
        """Liveness/degradation snapshot — the ``GET /healthz`` body.

        ``status`` is ``"degraded"`` (with human-readable ``reasons``)
        while any running job's checkpoint write path is degraded or any
        worker has been killed for hanging; ``"ok"`` otherwise.  Degraded
        is an *advisory* state: the service still accepts and completes
        jobs, so load balancers should keep routing — the flag is for
        operators and autoscalers watching disk pressure and hang rates.
        """
        degraded_jobs = sorted(self.scheduler.degraded_job_ids)
        workers_hung = int(self.rec.counters.get("service.workers_hung", 0))
        reasons: list[str] = []
        if degraded_jobs:
            reasons.append(
                f"checkpoint writes degraded for {len(degraded_jobs)} running job(s)"
            )
        if workers_hung:
            reasons.append(f"{workers_hung} hung worker(s) killed and resumed")
        return {
            "status": "degraded" if reasons else "ok",
            "degraded": bool(reasons),
            "reasons": reasons,
            "checkpoint_degraded_jobs": degraded_jobs,
            "workers_hung": workers_hung,
        }

    def report(self) -> dict[str, Any]:
        """The service-level metrics report (``service.*`` counters).

        Counter snapshot plus the live queue depth, registry size, and
        tombstone count; per-job span trees stay with the jobs
        (``job.metrics``).
        """
        doc = self.rec.to_dict()
        doc["counters"]["service.queue_depth"] = self.queue.depth
        with self._jobs_lock:
            doc["counters"]["service.jobs_known"] = len(self._jobs)
            doc["counters"]["service.tombstones"] = len(self._evicted)
        return doc

"""Load generation against the HTTP gateway: closed- and open-loop.

Following the load-profile + metrics-capture methodology of the service
benchmarking literature (PAPERS.md), two canonical load shapes:

**closed loop** (``mode="closed"``)
    ``concurrency`` client threads each run submit → poll status → fetch
    result → next job, so offered load adapts to service speed.  Measures
    sustainable throughput and latency under a fixed multiprogramming
    level — a 429 here is retried after its ``Retry-After``, because a
    closed-loop client *wants* the job to land.

**open loop** (``mode="open"``)
    Submissions fire at a fixed arrival ``rate`` (jobs/sec) from a
    scheduler thread regardless of completions — the shape that exposes
    queueing collapse.  A 429 is recorded and **dropped** (no retry): the
    arrival process must not stall on backpressure, and the 429 *rate* is
    the measurement.

Every job contributes one :class:`JobRecord`; the :class:`LoadReport`
aggregates p50/p95/p99 end-to-end latency (submit → terminal observed),
achieved throughput, per-status-code counts, the 429 rate, 5xx count, and
SLO violations (jobs whose latency exceeded ``slo_s``).

The measurement path is standard library only (``urllib`` + ``time``);
NumPy never touches it.  Closed-loop 429 retries back off with
*decorrelated jitter* (:func:`repro.service.faults.next_backoff`) floored
at the server's ``Retry-After`` hint, so a thundering herd of rejected
clients does not re-collide in lockstep.  ``python -m repro loadtest`` is
the CLI.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.service.faults import next_backoff

__all__ = ["JobRecord", "LoadReport", "default_spec_factory", "run_load"]


# ----------------------------------------------------------------------
# HTTP plumbing (stdlib only)
# ----------------------------------------------------------------------
def _request(
    base_url: str,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], bytes]:
    """One HTTP exchange; returns (status, headers, body bytes).

    4xx/5xx come back as ordinary return values, not exceptions — the load
    generator's whole job is to count them.
    """
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        base_url.rstrip("/") + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, dict(exc.headers), exc.read()


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


# ----------------------------------------------------------------------
# Records and the report
# ----------------------------------------------------------------------
@dataclass
class JobRecord:
    """One load-generated submission's fate."""

    index: int
    priority: int
    submit_code: int  # HTTP status of the (final) submission attempt
    job_id: str | None = None
    rejected_429: int = 0  # number of 429s this job saw
    submitted_at: float | None = None  # monotonic, after acceptance
    finished_at: float | None = None  # monotonic, terminal observed
    terminal_state: str | None = None
    result_code: int | None = None  # GET .../result status, when fetched
    result_bytes: int = 0
    error: str | None = None

    @property
    def latency_s(self) -> float | None:
        """End-to-end submit→terminal latency (None if never finished)."""
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


@dataclass
class LoadReport:
    """Aggregated outcome of one load run (the BENCH_7 measurement unit)."""

    mode: str
    n_jobs: int
    duration_s: float
    offered_rate_jobs_per_s: float | None
    records: list[JobRecord] = field(default_factory=list)
    slo_s: float | None = None

    # -- derived ---------------------------------------------------------
    @property
    def completed(self) -> list[JobRecord]:
        return [r for r in self.records if r.terminal_state == "DONE"]

    @property
    def latencies_s(self) -> list[float]:
        return sorted(
            r.latency_s for r in self.records if r.latency_s is not None
        )

    def status_counts(self) -> dict[str, int]:
        """Submission-attempt HTTP status tallies (429s counted per retry)."""
        counts: dict[str, int] = {}
        for r in self.records:
            counts[str(r.submit_code)] = counts.get(str(r.submit_code), 0) + 1
            if r.rejected_429 and r.submit_code != 429:
                # closed-loop retries: rejections that eventually succeeded
                counts["429"] = counts.get("429", 0) + r.rejected_429
        return counts

    @property
    def rejected_429(self) -> int:
        return sum(r.rejected_429 for r in self.records) + sum(
            1 for r in self.records if r.submit_code == 429 and not r.rejected_429
        )

    @property
    def server_errors_5xx(self) -> int:
        n = sum(1 for r in self.records if r.submit_code >= 500)
        n += sum(1 for r in self.records if (r.result_code or 0) >= 500)
        return n

    @property
    def slo_violations(self) -> int:
        if self.slo_s is None:
            return 0
        return sum(1 for lat in self.latencies_s if lat > self.slo_s)

    def to_dict(self) -> dict[str, Any]:
        lat = self.latencies_s
        completed = self.completed
        accepted = [r for r in self.records if r.job_id is not None]
        return {
            "mode": self.mode,
            "n_jobs": self.n_jobs,
            "duration_s": round(self.duration_s, 4),
            "offered_rate_jobs_per_s": self.offered_rate_jobs_per_s,
            "accepted": len(accepted),
            "completed": len(completed),
            "throughput_jobs_per_s": round(
                len(completed) / self.duration_s, 3
            )
            if self.duration_s > 0
            else 0.0,
            "latency": {
                "p50_s": round(_percentile(lat, 0.50), 4),
                "p95_s": round(_percentile(lat, 0.95), 4),
                "p99_s": round(_percentile(lat, 0.99), 4),
                "mean_s": round(sum(lat) / len(lat), 4) if lat else 0.0,
                "max_s": round(lat[-1], 4) if lat else 0.0,
            },
            "status_counts": self.status_counts(),
            "rejected_429": self.rejected_429,
            "rejected_429_rate": round(self.rejected_429 / self.n_jobs, 4)
            if self.n_jobs
            else 0.0,
            "server_errors_5xx": self.server_errors_5xx,
            "slo_s": self.slo_s,
            "slo_violations": self.slo_violations,
            "from_cache": sum(
                1 for r in self.records if r.terminal_state == "DONE" and r.result_bytes
            ),
        }

    def format(self) -> str:
        d = self.to_dict()
        lines = [
            f"{self.mode}-loop: {d['completed']}/{self.n_jobs} jobs in "
            f"{d['duration_s']:.2f}s -> {d['throughput_jobs_per_s']:.2f} jobs/s",
            f"  latency p50 {d['latency']['p50_s']:.3f}s  "
            f"p95 {d['latency']['p95_s']:.3f}s  p99 {d['latency']['p99_s']:.3f}s",
            f"  429s {d['rejected_429']} ({100 * d['rejected_429_rate']:.1f}% of jobs)"
            f"  5xx {d['server_errors_5xx']}"
            + (
                f"  SLO>{self.slo_s:g}s violations {d['slo_violations']}"
                if self.slo_s is not None
                else ""
            ),
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------
def default_spec_factory(
    *,
    driver: str = "icd",
    scan: str = "scan.npz",
    params: dict[str, Any] | None = None,
    priorities: tuple[int, ...] = (0, 1, 2),
    distinct_seeds: int = 0,
) -> Callable[[int], dict[str, Any]]:
    """A submission-body factory cycling priorities (and optionally seeds).

    ``distinct_seeds=K > 0`` spreads ``seed`` over ``i % K`` so a long run
    exercises both fresh reconstructions and content-addressed dedup hits;
    ``0`` leaves the seed to the caller-supplied ``params``.
    """
    base = dict(params or {})

    def factory(i: int) -> dict[str, Any]:
        p = dict(base)
        if distinct_seeds > 0:
            p["seed"] = i % distinct_seeds
        return {
            "driver": driver,
            "scan": scan,
            "params": p,
            "priority": priorities[i % len(priorities)],
        }

    return factory


def _await_terminal(
    base_url: str,
    record: JobRecord,
    *,
    poll_s: float,
    deadline: float,
    request_timeout_s: float,
    fetch_result: bool,
) -> None:
    """Poll one accepted job to a terminal state; optionally fetch bytes."""
    terminal = {"DONE", "FAILED", "CANCELLED"}
    while time.monotonic() < deadline:
        code, _, body = _request(
            base_url, "GET", f"/jobs/{record.job_id}", timeout=request_timeout_s
        )
        if code == 200:
            state = json.loads(body)["state"]
            if state in terminal:
                record.finished_at = time.monotonic()
                record.terminal_state = state
                break
        else:
            record.error = f"status poll -> {code}"
            return
        time.sleep(poll_s)
    else:
        record.error = "drain deadline hit before terminal"
        return
    if fetch_result and record.terminal_state == "DONE":
        code, _, body = _request(
            base_url,
            "GET",
            f"/jobs/{record.job_id}/result",
            timeout=request_timeout_s,
        )
        record.result_code = code
        if code == 200:
            record.result_bytes = len(body)


def run_load(
    base_url: str,
    *,
    mode: str = "closed",
    n_jobs: int = 50,
    rate: float | None = None,
    concurrency: int = 4,
    spec_factory: Callable[[int], dict[str, Any]] | None = None,
    slo_s: float | None = None,
    poll_s: float = 0.02,
    request_timeout_s: float = 30.0,
    drain_timeout_s: float = 600.0,
    fetch_results: bool = True,
    max_submit_retries: int = 50,
) -> LoadReport:
    """Drive ``n_jobs`` submissions at the gateway; returns the report.

    ``mode="closed"`` runs ``concurrency`` submit→poll→fetch client loops;
    ``mode="open"`` fires submissions at ``rate`` jobs/sec (required) and
    polls accepted jobs on ``concurrency`` watcher threads.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode requires a positive rate")
    factory = spec_factory or default_spec_factory()
    records = [JobRecord(index=i, priority=0, submit_code=0) for i in range(n_jobs)]
    t0 = time.monotonic()
    deadline = t0 + drain_timeout_s

    def submit(record: JobRecord, *, retry_429: bool) -> bool:
        """POST one job; True once accepted.  Closed loops retry 429s.

        Retries back off with decorrelated jitter (seeded per record, so a
        run is reproducible): the server's ``Retry-After`` is the floor, but
        ``concurrency`` clients sleeping the *same* literal hint would wake
        in lockstep and re-collide on the admission gate.
        """
        body = factory(record.index)
        record.priority = int(body.get("priority", 0))
        rng = random.Random(record.index)
        delay: float | None = None
        while True:
            code, headers, payload = _request(
                base_url, "POST", "/jobs", body, timeout=request_timeout_s
            )
            record.submit_code = code
            if code == 201:
                record.job_id = json.loads(payload)["job_id"]
                record.submitted_at = time.monotonic()
                return True
            if code == 429:
                record.rejected_429 += 1
                if not retry_429 or record.rejected_429 > max_submit_retries:
                    return False
                retry_after = float(headers.get("Retry-After") or poll_s)
                delay = next_backoff(
                    delay if delay is not None else retry_after,
                    base_s=retry_after,
                    cap_s=5.0,
                    rng=rng,
                )
                if time.monotonic() + delay >= deadline:
                    return False
                time.sleep(delay)
                continue
            record.error = f"submit -> {code}: {payload[:200]!r}"
            return False

    if mode == "closed":
        cursor = iter(range(n_jobs))
        cursor_lock = threading.Lock()

        def client() -> None:
            while True:
                with cursor_lock:
                    i = next(cursor, None)
                if i is None:
                    return
                record = records[i]
                if submit(record, retry_429=True):
                    _await_terminal(
                        base_url,
                        record,
                        poll_s=poll_s,
                        deadline=deadline,
                        request_timeout_s=request_timeout_s,
                        fetch_result=fetch_results,
                    )

        threads = [
            threading.Thread(target=client, name=f"loadgen-{t}", daemon=True)
            for t in range(max(1, concurrency))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        # Open loop: one arrival scheduler, a pool of completion watchers.
        accepted: list[JobRecord] = []
        accepted_lock = threading.Lock()
        arrivals_done = threading.Event()

        def arrivals() -> None:
            for i in range(n_jobs):
                target = t0 + i / rate
                delay = target - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                record = records[i]
                if submit(record, retry_429=False):
                    with accepted_lock:
                        accepted.append(record)
            arrivals_done.set()

        def watcher() -> None:
            while True:
                with accepted_lock:
                    record = accepted.pop() if accepted else None
                if record is None:
                    if arrivals_done.is_set():
                        with accepted_lock:
                            if not accepted:
                                return
                        continue
                    time.sleep(poll_s)
                    continue
                _await_terminal(
                    base_url,
                    record,
                    poll_s=poll_s,
                    deadline=deadline,
                    request_timeout_s=request_timeout_s,
                    fetch_result=fetch_results,
                )

        threads = [threading.Thread(target=arrivals, name="loadgen-arrivals", daemon=True)]
        threads += [
            threading.Thread(target=watcher, name=f"loadgen-watch-{t}", daemon=True)
            for t in range(max(1, concurrency))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    return LoadReport(
        mode=mode,
        n_jobs=n_jobs,
        duration_s=time.monotonic() - t0,
        offered_rate_jobs_per_s=rate,
        records=records,
        slo_s=slo_s,
    )

"""Job execution: dispatch a JobSpec to the right driver, resiliently.

One function — :func:`run_job` — turns a spec into a driver call:

* the system matrix is built once per acquisition geometry and shared
  across jobs through a process-wide cache (:func:`system_for` —
  :func:`~repro.ct.system_matrix.build_system_matrix` is deterministic and
  read-only, so concurrent jobs on the same geometry reuse one instance);
* every job runs with an attached per-job
  :class:`~repro.resilience.CheckpointManager` and
  ``resume_from="latest"`` — a fresh job finds no checkpoint and starts
  clean, a job whose previous worker was killed resumes bit-identically
  from its last snapshot instead of recomputing from scratch;
* for ``gpu_icd``, spec params naming :class:`GPUICDParams` fields are
  folded into the ``params=`` object the driver expects;
* the test-only ``fault`` hook arms an
  :class:`~repro.resilience.IntegritySentinel` with a kill-at-iteration
  injector — but only on the job's first life, so kill-and-resume drills
  cannot kill the resumed run again.
"""

from __future__ import annotations

import dataclasses
import inspect
import signal as signal_mod
import threading
from pathlib import Path
from typing import Any

from repro.core.gpu_icd import GPUICDParams, gpu_icd_reconstruct
from repro.core.icd import icd_reconstruct
from repro.core.psv_icd import psv_icd_reconstruct
from repro.ct.geometry import ParallelBeamGeometry
from repro.ct.system_matrix import SystemMatrix, build_system_matrix
from repro.multires.pyramid import multires_reconstruct
from repro.resilience import FaultInjector, IntegritySentinel
from repro.service.faults import DegradingCheckpointManager
from repro.service.jobs import JobSpec

__all__ = ["system_for", "clear_system_cache", "run_job", "cache_key_defaults"]

_DRIVER_FNS = {
    "icd": icd_reconstruct,
    "psv_icd": psv_icd_reconstruct,
    "gpu_icd": gpu_icd_reconstruct,
    "multires": multires_reconstruct,
}

_GPU_PARAM_FIELDS = frozenset(f.name for f in dataclasses.fields(GPUICDParams))

# -- system-matrix cache ------------------------------------------------
_system_lock = threading.Lock()
_system_cache: dict[tuple, SystemMatrix] = {}


def _geometry_key(geometry: ParallelBeamGeometry) -> tuple:
    return (
        geometry.n_pixels,
        geometry.n_views,
        geometry.n_channels,
        geometry.pixel_size,
        geometry.channel_spacing,
    )


def system_for(geometry: ParallelBeamGeometry) -> SystemMatrix:
    """The shared system matrix for ``geometry`` (built once, process-wide)."""
    key = _geometry_key(geometry)
    with _system_lock:
        system = _system_cache.get(key)
    if system is not None:
        return system
    built = build_system_matrix(geometry)
    with _system_lock:
        # A concurrent builder may have won the race; keep the first one so
        # every job sees the same instance.
        return _system_cache.setdefault(key, built)


def clear_system_cache() -> None:
    """Drop all cached system matrices (tests, memory pressure)."""
    with _system_lock:
        _system_cache.clear()


# -- dispatch -----------------------------------------------------------
def cache_key_defaults(
    driver: str, params: dict[str, Any], driver_defaults: dict[str, Any] | None
) -> dict[str, Any]:
    """The ``driver_defaults`` contribution to a job's result-cache key.

    Pool/pipeline/batching defaults are iterate-neutral (the cross-backend
    contract), but ``backend`` picks between two execution *models* whose
    iterates validly differ: the drivers' built-in inline emulation versus
    the snapshot-isolated backends (serial/thread/process — bit-identical
    to each other).  When the defaults flip a job to the snapshot model,
    the key must record it, or a fleet that changes
    ``driver_defaults["backend"]`` against a persistent ``cache_dir``
    would silently be served results computed under the other model.

    Defaults the driver doesn't accept (``icd`` has no wave structure) or
    that the spec overrides (spec params win and are keyed already) cannot
    affect the job, and ``"inline"`` is the drivers' own default — all
    three map to ``{}`` so keys of fleets that never set a backend default
    are unchanged.

    ``multires`` additionally folds its resolved ``base_driver`` default
    into the key (same bug class as the backend fix above): an explicit
    ``base_driver="icd"`` and an omitted one run the identical pyramid,
    so they must share a cache entry — while ``base_driver="psv_icd"``,
    whose iterates validly differ, must not.  Pyramid/shard params that
    arrive explicitly (``levels``, ``coarse_equits``, ``voxel_subset``,
    ndarray ``init`` seeds, ...) are spec params and therefore keyed
    already — :func:`repro.service.cache.cache_key` hashes ndarray values
    by content.
    """
    defaults: dict[str, Any] = {}
    if driver == "multires" and "base_driver" not in params:
        defaults["base_driver"] = "icd"
    if (
        driver_defaults
        and "backend" in driver_defaults
        and "backend" not in params
        and "backend" in inspect.signature(_DRIVER_FNS[driver]).parameters
        and driver_defaults["backend"] != "inline"
    ):
        defaults["execution_model"] = "snapshot"
    return defaults


def _split_gpu_params(params: dict[str, Any]) -> dict[str, Any]:
    """Fold GPUICDParams-field keys into a ``params=`` object."""
    fields = {k: v for k, v in params.items() if k in _GPU_PARAM_FIELDS}
    rest = {k: v for k, v in params.items() if k not in _GPU_PARAM_FIELDS}
    if fields:
        rest["params"] = GPUICDParams(**fields)
    return rest


def fault_sentinel(fault: dict[str, Any] | None) -> IntegritySentinel | None:
    """Build the kill-drill sentinel for a spec's ``fault`` hook, if any.

    ``{"kill_at_iteration": N}`` SIGKILLs the worker at iteration ``N``;
    an optional ``"signal"`` (int or name, e.g. ``"SIGSTOP"``) is sent
    instead — SIGSTOP leaves the worker alive but silent, the hang the
    heartbeat supervisor exists to catch.
    """
    if not fault:
        return None
    unknown = set(fault) - {"kill_at_iteration", "signal"}
    kill_at = fault.get("kill_at_iteration")
    if unknown or kill_at is None:
        raise ValueError(f"unsupported fault spec {fault!r}")
    sig = fault.get("signal", signal_mod.SIGKILL)
    if isinstance(sig, str):
        resolved = getattr(signal_mod, sig, None)
        if resolved is None:
            raise ValueError(f"unknown signal {sig!r} in fault spec {fault!r}")
        sig = resolved
    injector = FaultInjector().kill_at(int(kill_at), sig=int(sig))
    return IntegritySentinel(fault_injector=injector)


def run_job(
    spec: JobSpec,
    *,
    checkpoint_dir: str | Path,
    checkpoint_every: int = 1,
    metrics=None,
    driver_defaults: dict[str, Any] | None = None,
):
    """Execute ``spec``'s reconstruction, checkpointed and resumable.

    The job checkpoints into ``checkpoint_dir`` every ``checkpoint_every``
    iterations and always resumes from the newest valid snapshot there
    (none yet = fresh start).  Returns the driver's result object.

    ``driver_defaults`` supplies service-level execution defaults (e.g.
    ``{"backend": "process", "n_workers": 4, "pipeline": True}``).  Spec
    params always win, and keys the target driver doesn't accept are
    dropped (``icd`` has no wave structure, so backend knobs only reach
    the PSV/GPU drivers).  Iterate-neutral defaults
    (pool-backend/pipeline/batching choices, per the cross-backend
    contract) don't enter the result-cache key; the one default that does
    change iterates — ``backend`` flipping a job from the inline to the
    snapshot-isolated execution model — is folded into the key by the
    service (see :func:`cache_key_defaults`), so fleets on different
    models never share cache entries.
    """
    driver_fn = _DRIVER_FNS[spec.driver]
    system = system_for(spec.scan.geometry)
    kwargs = dict(spec.params)
    if driver_defaults:
        accepted = set(inspect.signature(driver_fn).parameters)
        kwargs = {
            **{k: v for k, v in driver_defaults.items() if k in accepted},
            **kwargs,
        }
    if spec.driver == "gpu_icd":
        kwargs = _split_gpu_params(kwargs)

    # Degrading manager: a disk fault on the checkpoint directory suspends
    # checkpointing (CHECKPOINT_DEGRADED on the job, periodic re-probe)
    # instead of failing an otherwise-healthy reconstruction.
    manager = DegradingCheckpointManager(checkpoint_dir, recorder=metrics)
    first_life = not manager.paths()
    sentinel = fault_sentinel(spec.fault) if first_life else None

    return driver_fn(
        spec.scan,
        system,
        metrics=metrics,
        checkpoint=manager,
        checkpoint_every=checkpoint_every,
        resume_from="latest",
        sentinel=sentinel,
        **kwargs,
    )

"""Job model: specs, the lifecycle state machine, typed service errors.

A *job* is one reconstruction request flowing through the service: a
:class:`JobSpec` (driver + scan + driver parameters + priority) wrapped in a
:class:`Job` that tracks the lifecycle

    PENDING ──▶ RUNNING ──▶ DONE
       │           ├──────▶ FAILED
       │           └──────▶ CANCELLED
       ├──────────────────▶ DONE        (duplicate served from the ResultCache)
       ├──────────────────▶ FAILED      (spec rejected at run dispatch)
       └──────────────────▶ CANCELLED   (cancelled before a worker picked it up)

Every transition is validated against that machine (anything else raises the
typed :class:`JobStateError`) and appended to the job's event log; each
checkpoint snapshot the resilience layer writes while the job runs is
recorded as a ``CHECKPOINTED`` event, so a job's history shows exactly how
far a killed worker will be able to resume it from.

All mutating methods are thread-safe: workers, the submitting thread, and
status readers share jobs freely.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ct.sinogram import ScanData

__all__ = [
    "DRIVERS",
    "ServiceError",
    "JobStateError",
    "JobFailedError",
    "JobCancelledError",
    "JobDeadlineError",
    "ResultPersistError",
    "UnknownJobError",
    "EvictedJobError",
    "JobState",
    "TERMINAL_STATES",
    "JobEvent",
    "JobSpec",
    "Job",
]

#: Reconstruction drivers a job may request.  ``multires`` is the
#: coarse-to-fine pyramid (repro.multires), which runs one of the other
#: three per level (``base_driver`` param, default ``icd``).
DRIVERS = ("icd", "psv_icd", "gpu_icd", "multires")


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """Base class for reconstruction-service failures."""


class JobStateError(ServiceError):
    """An invalid lifecycle transition was attempted."""


class JobFailedError(ServiceError):
    """The job terminated in FAILED; raised by ``result()`` waiters."""


class JobCancelledError(ServiceError):
    """The job was cancelled.

    Raised *inside* a running driver at the next iteration boundary (the
    progress stream checks the job's cancel token there) and by
    ``result()`` waiters of a CANCELLED job.
    """


class JobDeadlineError(ServiceError):
    """The job exceeded its wall-clock budget (``job_deadline_s``).

    Process workers are SIGKILLed at the deadline; thread workers stop
    cooperatively at the next iteration boundary.  Either way the job
    files FAILED with this error's message in the detail.
    """


class ResultPersistError(ServiceError):
    """The finished result could not be written to disk.

    Checkpoint, cache, and status writes *degrade* under disk faults —
    the job keeps computing and completes.  The result container is the
    one irreplaceable artifact: when its write still fails after the
    retry budget, the job files FAILED with the errno in the detail.
    """

    def __init__(self, message: str, *, errno: int | None = None) -> None:
        super().__init__(message)
        self.errno = errno


class UnknownJobError(ServiceError, KeyError):
    """No job with the given id is known to the service."""


class EvictedJobError(UnknownJobError):
    """The job existed but its terminal record was evicted by the TTL reaper.

    A tombstone distinguishes "never heard of it" (plain
    :class:`UnknownJobError`, HTTP 404) from "finished and aged out"
    (this error, HTTP 410) for long-lived gateways that bound their job
    registry with ``job_ttl_s``.
    """


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class JobState(str, enum.Enum):
    """Lifecycle states of a reconstruction job."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"


#: States a job can never leave.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})

_VALID_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    # PENDING -> DONE is the cache-hit fast path; PENDING -> FAILED a spec
    # rejected at dispatch; PENDING -> CANCELLED a cancel before pickup.
    JobState.PENDING: frozenset(
        {JobState.RUNNING, JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.RUNNING: frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


@dataclass(frozen=True)
class JobEvent:
    """One entry of a job's event log."""

    kind: str  # SUBMITTED | RUNNING | CHECKPOINTED | DONE | FAILED | CANCELLED
    #            | DEDUPED | WORKER_CRASHED (process worker died; job resumed)
    #            | WORKER_HUNG (silent/over-deadline worker killed; job resumed)
    #            | CHECKPOINT_DEGRADED / CHECKPOINT_RECOVERED (disk-fault
    #              degradation of the checkpoint write path)
    at: float  # service-clock timestamp
    detail: dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass
class JobSpec:
    """What to reconstruct and how.

    Attributes
    ----------
    driver:
        One of :data:`DRIVERS`.
    scan:
        The measurements to reconstruct.
    params:
        Keyword arguments forwarded to the driver (``max_equits``, ``seed``,
        ``sv_side``, ``kernel``, ``backend`` ...).  For ``gpu_icd``, keys
        naming :class:`~repro.core.gpu_icd.GPUICDParams` fields are folded
        into a ``params=`` object automatically.  Values must be
        JSON-serialisable — they are part of the result-cache key.
    priority:
        Scheduling priority; **higher runs earlier**.  Jobs of equal
        priority run in submission (FIFO) order.
    job_id:
        Optional stable identifier (a fresh one is assigned when omitted).
        Stability matters for crash recovery: a resubmitted job with the
        same id finds its previous checkpoint directory and resumes.
    fault:
        Test-only fault-injection hook (mirrors the drivers' public
        ``fault_injection=``): ``{"kill_at_iteration": N}`` SIGKILLs the
        worker process after iteration ``N``; an optional ``"signal"`` key
        (an int or a name like ``"SIGSTOP"``) sends that signal instead —
        ``SIGSTOP`` produces an alive-but-hung worker for heartbeat
        drills.  The fault arms only on a job's *first* life (a job
        resuming from checkpoints never re-arms it), so kill-and-resume
        drills terminate.
    """

    driver: str
    scan: ScanData
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    job_id: str | None = None
    fault: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.driver not in DRIVERS:
            raise ValueError(f"unknown driver {self.driver!r}; use one of {DRIVERS}")
        if not isinstance(self.scan, ScanData):
            raise TypeError(f"scan must be ScanData, got {type(self.scan).__name__}")
        self.priority = int(self.priority)


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
class Job:
    """One submission's live state inside the service.

    Workers mutate it through :meth:`transition` / :meth:`note_iteration` /
    :meth:`note_checkpoint`; any thread may read :meth:`snapshot` or block
    on :meth:`wait`.
    """

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        *,
        seq: int = 0,
        cache_key: str | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.seq = int(seq)  # FIFO tiebreak within a priority class
        self.cache_key = cache_key
        self._clock = clock
        self._lock = threading.Lock()
        self._terminal = threading.Event()
        self._cancel = threading.Event()

        self.state = JobState.PENDING
        self.events: list[JobEvent] = []
        self.error: str | None = None
        self.result = None  # ICDResult-shaped object once DONE
        self.metrics = None  # the job's ProgressRecorder, attached at run time
        self.from_cache = False
        self.submitted_at: float = clock()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: progress of the most recent run segment
        self.iteration = 0
        self.last_iteration_s: float | None = None
        self.checkpoints = 0
        self.record_event("SUBMITTED", priority=spec.priority)

    # -- lifecycle ------------------------------------------------------
    def transition(self, new_state: JobState, *, error: str | None = None, **detail) -> None:
        """Move to ``new_state``; anything off the state machine raises."""
        with self._lock:
            if new_state not in _VALID_TRANSITIONS[self.state]:
                raise JobStateError(
                    f"job {self.job_id}: invalid transition "
                    f"{self.state.value} -> {new_state.value}"
                )
            self.state = new_state
            now = self._clock()
            if new_state is JobState.RUNNING:
                self.started_at = now
            if new_state in TERMINAL_STATES:
                self.finished_at = now
            if error is not None:
                self.error = error
                detail = {**detail, "error": error}
            self.events.append(JobEvent(kind=new_state.value, at=now, detail=detail))
        if new_state in TERMINAL_STATES:
            self._terminal.set()

    def record_event(self, kind: str, **detail) -> None:
        """Append a non-transition event (SUBMITTED, CHECKPOINTED, DEDUPED...)."""
        with self._lock:
            self.events.append(JobEvent(kind=kind, at=self._clock(), detail=detail))

    # -- progress (called from the worker's ProgressRecorder) -----------
    def note_iteration(self, iteration: int, duration_s: float | None) -> None:
        """Record that outer iteration ``iteration`` just completed."""
        with self._lock:
            self.iteration = int(iteration)
            self.last_iteration_s = duration_s

    def note_checkpoint(self, iteration: int) -> None:
        """Record one checkpoint snapshot (the CHECKPOINTED lifecycle event)."""
        with self._lock:
            self.checkpoints += 1
            self.events.append(
                JobEvent(
                    kind="CHECKPOINTED",
                    at=self._clock(),
                    detail={"iteration": int(iteration)},
                )
            )

    # -- cancellation ---------------------------------------------------
    def request_cancel(self) -> bool:
        """Ask for cancellation; False if the job already finished.

        A PENDING job is cancelled when a worker next touches it; a RUNNING
        job stops cooperatively at its next iteration boundary.
        """
        if self.state in TERMINAL_STATES:
            return False
        self._cancel.set()
        return True

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`request_cancel` has been called."""
        return self._cancel.is_set()

    # -- waiting / reading ----------------------------------------------
    @property
    def terminal(self) -> bool:
        """Whether the job reached DONE / FAILED / CANCELLED."""
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; False on timeout."""
        return self._terminal.wait(timeout)

    @property
    def equits(self) -> float:
        """Cumulative equits of the completed result (0.0 until DONE)."""
        result = self.result
        if result is not None and getattr(result, "history", None) is not None:
            return result.history.equits
        return 0.0

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready status snapshot (what ``status.json`` persists)."""
        with self._lock:
            return {
                "job_id": self.job_id,
                "driver": self.spec.driver,
                "priority": self.spec.priority,
                "state": self.state.value,
                "iteration": self.iteration,
                "checkpoints": self.checkpoints,
                "from_cache": self.from_cache,
                "cache_key": self.cache_key,
                "error": self.error,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "cancel_requested": self._cancel.is_set(),
                "equits": self.equits,
            }

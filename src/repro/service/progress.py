"""Per-job progress stream fed from the drivers' iteration spans.

The drivers already emit one ``iteration`` span per outer iteration and the
resilience layer one ``checkpoint_save`` span per snapshot (DESIGN.md §9) —
so instead of inventing a second callback plumbing through every driver,
the service hands each job a :class:`ProgressRecorder`: a
:class:`~repro.observability.MetricsRecorder` whose span-close hook

* emits a :class:`ProgressEvent` to the job's subscriber after every
  completed iteration,
* records each checkpoint snapshot as a ``CHECKPOINTED`` job event, and
* checks the job's cancel token at the iteration boundary, raising
  :class:`~repro.service.jobs.JobCancelledError` out of the driver loop —
  cooperative cancellation with zero driver changes.

Each job owns a private recorder (MetricsRecorder span stacks are not
thread-safe), and its full metrics report is kept with the job, so a job's
per-iteration timing breakdown remains inspectable after completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.observability import MetricsRecorder, Span
from repro.service.jobs import Job, JobCancelledError, JobDeadlineError

__all__ = ["ProgressEvent", "ProgressRecorder"]


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification delivered to a job's subscriber."""

    job_id: str
    kind: str  # "iteration" | "checkpoint"
    iteration: int
    duration_s: float | None = None


class ProgressRecorder(MetricsRecorder):
    """MetricsRecorder that streams iteration/checkpoint spans to a job.

    Events fire from :meth:`_pop` — i.e. when the driver's ``with
    rec.span("iteration")`` block exits — so the iterate, history record,
    and checkpoint for that iteration are already complete when the
    subscriber sees the event.  Cancellation raised here propagates out of
    the driver's iteration loop; the drivers release backend resources via
    their ``finally`` blocks, and the worker marks the job CANCELLED.
    """

    def __init__(
        self,
        job: Job,
        on_progress: Callable[[ProgressEvent], None] | None = None,
        *,
        on_fault: Callable[[Job, str, dict], None] | None = None,
        deadline: float | None = None,
    ) -> None:
        super().__init__()
        self._job = job
        self._on_progress = on_progress
        self._on_fault = on_fault
        #: ``time.monotonic()`` instant past which the job is over budget
        #: (thread workers can't be killed, so the deadline is enforced
        #: cooperatively at the same boundary the cancel check uses).
        self._deadline = deadline

    def note_fault(self, kind: str, **detail: Any) -> None:
        """File a fault transition (CHECKPOINT_DEGRADED/...) against the job.

        With an ``on_fault`` callback (the scheduler's bookkeeping hook)
        the callback owns recording; standalone recorders log the event
        directly.
        """
        if self._on_fault is not None:
            self._on_fault(self._job, kind, detail)
        else:
            self._job.record_event(kind, **detail)

    def _emit(self, event: ProgressEvent) -> None:
        if self._on_progress is not None:
            self._on_progress(event)

    def _pop(self, span: Span) -> None:
        super()._pop(span)
        meta = span.meta or {}
        if span.name == "iteration":
            iteration = int(meta.get("index", 0))
            self._job.note_iteration(iteration, span.duration)
            self._emit(
                ProgressEvent(
                    job_id=self._job.job_id,
                    kind="iteration",
                    iteration=iteration,
                    duration_s=span.duration,
                )
            )
            if self._job.cancel_requested:
                raise JobCancelledError(
                    f"job {self._job.job_id} cancelled at iteration {iteration}"
                )
            if self._deadline is not None and time.monotonic() >= self._deadline:
                raise JobDeadlineError(
                    f"job {self._job.job_id} exceeded its wall-clock deadline "
                    f"at iteration {iteration}"
                )
        elif span.name == "checkpoint_save" and not meta.get("suppressed"):
            iteration = int(meta.get("iteration", 0))
            self._job.note_checkpoint(iteration)
            self._emit(
                ProgressEvent(
                    job_id=self._job.job_id,
                    kind="checkpoint",
                    iteration=iteration,
                    duration_s=span.duration,
                )
            )

"""Per-job progress stream fed from the drivers' iteration spans.

The drivers already emit one ``iteration`` span per outer iteration and the
resilience layer one ``checkpoint_save`` span per snapshot (DESIGN.md §9) —
so instead of inventing a second callback plumbing through every driver,
the service hands each job a :class:`ProgressRecorder`: a
:class:`~repro.observability.MetricsRecorder` whose span-close hook

* emits a :class:`ProgressEvent` to the job's subscriber after every
  completed iteration,
* records each checkpoint snapshot as a ``CHECKPOINTED`` job event, and
* checks the job's cancel token at the iteration boundary, raising
  :class:`~repro.service.jobs.JobCancelledError` out of the driver loop —
  cooperative cancellation with zero driver changes.

Each job owns a private recorder (MetricsRecorder span stacks are not
thread-safe), and its full metrics report is kept with the job, so a job's
per-iteration timing breakdown remains inspectable after completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.observability import MetricsRecorder, Span
from repro.service.jobs import Job, JobCancelledError

__all__ = ["ProgressEvent", "ProgressRecorder"]


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification delivered to a job's subscriber."""

    job_id: str
    kind: str  # "iteration" | "checkpoint"
    iteration: int
    duration_s: float | None = None


class ProgressRecorder(MetricsRecorder):
    """MetricsRecorder that streams iteration/checkpoint spans to a job.

    Events fire from :meth:`_pop` — i.e. when the driver's ``with
    rec.span("iteration")`` block exits — so the iterate, history record,
    and checkpoint for that iteration are already complete when the
    subscriber sees the event.  Cancellation raised here propagates out of
    the driver's iteration loop; the drivers release backend resources via
    their ``finally`` blocks, and the worker marks the job CANCELLED.
    """

    def __init__(
        self,
        job: Job,
        on_progress: Callable[[ProgressEvent], None] | None = None,
    ) -> None:
        super().__init__()
        self._job = job
        self._on_progress = on_progress

    def _emit(self, event: ProgressEvent) -> None:
        if self._on_progress is not None:
            self._on_progress(event)

    def _pop(self, span: Span) -> None:
        super()._pop(span)
        meta = span.meta or {}
        if span.name == "iteration":
            iteration = int(meta.get("index", 0))
            self._job.note_iteration(iteration, span.duration)
            self._emit(
                ProgressEvent(
                    job_id=self._job.job_id,
                    kind="iteration",
                    iteration=iteration,
                    duration_s=span.duration,
                )
            )
            if self._job.cancel_requested:
                raise JobCancelledError(
                    f"job {self._job.job_id} cancelled at iteration {iteration}"
                )
        elif span.name == "checkpoint_save":
            iteration = int(meta.get("iteration", 0))
            self._job.note_checkpoint(iteration)
            self._emit(
                ProgressEvent(
                    job_id=self._job.job_id,
                    kind="checkpoint",
                    iteration=iteration,
                    duration_s=span.duration,
                )
            )

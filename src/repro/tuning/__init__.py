"""Input-specific parameter auto-tuning (the paper's §8 future work)."""

from repro.tuning.autotune import AutoTuner, SearchSpace, TuningResult
from repro.tuning.predictor import estimate_zero_skip_fraction

__all__ = ["AutoTuner", "SearchSpace", "TuningResult", "estimate_zero_skip_fraction"]

"""Input-statistics predictors feeding the auto-tuner.

The paper observes that "the best performing parameter values differ across
images" (§5.2).  The input property our timing model is sensitive to is the
zero-skip fraction — how much of the slice is air — which this module
estimates *without running a reconstruction*, from the FBP image the
iterative drivers initialise with anyway.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.ct.fbp import fbp_reconstruct
from repro.ct.phantoms import MU_WATER
from repro.ct.sinogram import ScanData
from repro.utils import check_positive

__all__ = ["estimate_zero_skip_fraction"]


def estimate_zero_skip_fraction(
    scan: ScanData,
    *,
    threshold: float = 0.2 * MU_WATER,
    erosion_margin: int = 1,
) -> float:
    """Estimate the fraction of voxel visits zero-skipping will reject.

    Reconstructs the scan with FBP and counts voxels that are below
    ``threshold`` *and* whose whole neighborhood is below it (zero-skipping
    requires the voxel and all neighbors to be zero, so air pixels adjacent
    to objects still get updated — approximated by eroding the air mask by
    ``erosion_margin`` pixels).

    Returns a value in [0, 0.99].
    """
    check_positive("threshold", threshold)
    if erosion_margin < 0:
        raise ValueError("erosion_margin must be >= 0")
    img = fbp_reconstruct(scan.sinogram, scan.geometry)
    air = img < threshold
    if erosion_margin > 0:
        size = 2 * erosion_margin + 1
        air = ndimage.binary_erosion(air, structure=np.ones((size, size)))
    return min(float(np.mean(air)), 0.99)

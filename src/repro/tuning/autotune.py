"""Model-driven auto-tuning of GPU-ICD parameters.

The paper's conclusion: "the best values of the parameters are sensitive to
the input, and hence are often not catered to by auto-tuning systems.  In
future, we plan to build a model that automatically selects input-specific
high performing parameter values."  This module is that model: it searches
the (SV side x threadblocks/SV x threads/block x batch x chunk width) space
against the calibrated :class:`~repro.gpusim.timing.GPUTimingModel`,
conditioned on the input's estimated zero-skip fraction.

Two search strategies:

* :meth:`AutoTuner.grid_search` — exhaustive over the (discrete) space;
* :meth:`AutoTuner.coordinate_descent` — tune one parameter at a time
  holding the others, cycling until a fixed point; vastly fewer model
  evaluations and, fittingly, the same algorithmic idea as ICD itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.core.gpu_icd import GPUICDParams
from repro.gpusim.kernel import GPUKernelConfig
from repro.gpusim.timing import GPUTimingModel

__all__ = ["SearchSpace", "TuningResult", "AutoTuner"]


@dataclass(frozen=True)
class SearchSpace:
    """Candidate values per tunable parameter."""

    sv_side: tuple[int, ...] = (17, 25, 33, 41, 49)
    threadblocks_per_sv: tuple[int, ...] = (8, 16, 24, 32, 40, 48)
    threads_per_block: tuple[int, ...] = (128, 192, 256, 384)
    batch_size: tuple[int, ...] = (8, 16, 32, 64)
    chunk_width: tuple[int, ...] = (16, 32, 64)

    @property
    def dimensions(self) -> dict[str, tuple[int, ...]]:
        """Parameter-name -> candidates mapping, in tuning order."""
        return {
            "sv_side": self.sv_side,
            "threadblocks_per_sv": self.threadblocks_per_sv,
            "threads_per_block": self.threads_per_block,
            "batch_size": self.batch_size,
            "chunk_width": self.chunk_width,
        }

    @property
    def size(self) -> int:
        """Number of points in the full grid."""
        n = 1
        for vals in self.dimensions.values():
            n *= len(vals)
        return n


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    best_params: GPUICDParams
    best_time: float  # modeled seconds per equit
    evaluations: int
    history: list[tuple[GPUICDParams, float]] = field(default_factory=list, repr=False)

    def improvement_over(self, params: GPUICDParams, tuner: "AutoTuner") -> float:
        """Speedup of the tuned point over a reference parameterisation."""
        return tuner.evaluate(params) / self.best_time


class AutoTuner:
    """Searches GPU-ICD's parameter space on the timing model.

    Parameters
    ----------
    model:
        Timing model for the target geometry/device.
    config:
        Kernel build configuration (all §4 optimizations on by default).
    zero_skip_fraction:
        The input statistic the tuning is conditioned on; estimate it with
        :func:`repro.tuning.predictor.estimate_zero_skip_fraction`.
    """

    def __init__(
        self,
        model: GPUTimingModel,
        *,
        config: GPUKernelConfig | None = None,
        zero_skip_fraction: float = 0.0,
    ) -> None:
        self.model = model
        self.config = config if config is not None else GPUKernelConfig()
        if not 0.0 <= zero_skip_fraction < 1.0:
            raise ValueError("zero_skip_fraction must be in [0, 1)")
        self.zero_skip_fraction = zero_skip_fraction
        self._cache: dict[tuple, float] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------
    def evaluate(self, params: GPUICDParams) -> float:
        """Modeled seconds per equit for ``params`` (memoised)."""
        key = (
            params.sv_side,
            params.threadblocks_per_sv,
            params.threads_per_block,
            params.batch_size,
            params.chunk_width,
        )
        if key not in self._cache:
            self.evaluations += 1
            self._cache[key] = self.model.equit_time(
                params, self.config, zero_skip_fraction=self.zero_skip_fraction
            )
        return self._cache[key]

    # ------------------------------------------------------------------
    def grid_search(self, space: SearchSpace | None = None) -> TuningResult:
        """Exhaustive search over the space's full grid."""
        space = space if space is not None else SearchSpace()
        dims = space.dimensions
        best: tuple[GPUICDParams, float] | None = None
        history = []
        for values in itertools.product(*dims.values()):
            params = GPUICDParams(**dict(zip(dims.keys(), values)))
            t = self.evaluate(params)
            history.append((params, t))
            if best is None or t < best[1]:
                best = (params, t)
        assert best is not None
        return TuningResult(
            best_params=best[0], best_time=best[1],
            evaluations=self.evaluations, history=history,
        )

    def coordinate_descent(
        self,
        space: SearchSpace | None = None,
        *,
        start: GPUICDParams | None = None,
        max_rounds: int = 5,
    ) -> TuningResult:
        """Tune one parameter at a time until no single change helps.

        Converges to a coordinate-wise minimum of the model surface; on the
        default space this is also the global grid minimum (the surface is
        benign), at a small fraction of the grid's evaluations.
        """
        space = space if space is not None else SearchSpace()
        dims = space.dimensions
        current = start if start is not None else GPUICDParams(
            **{name: vals[len(vals) // 2] for name, vals in dims.items()}
        )
        current_t = self.evaluate(current)
        history = [(current, current_t)]
        for _ in range(max_rounds):
            improved = False
            for name, candidates in dims.items():
                for v in candidates:
                    if getattr(current, name) == v:
                        continue
                    trial = replace(current, **{name: v})
                    t = self.evaluate(trial)
                    history.append((trial, t))
                    if t < current_t:
                        current, current_t = trial, t
                        improved = True
            if not improved:
                break
        return TuningResult(
            best_params=current, best_time=current_t,
            evaluations=self.evaluations, history=history,
        )

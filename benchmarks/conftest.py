"""Shared state for the benchmark suite.

One :class:`~repro.harness.experiments.ExperimentContext` is built per
session: all benchmark targets share its system matrix, scans and golden
reconstructions, so the suite's wall time goes into the experiments
themselves.

Scale note: real-numerics runs happen at BENCH_PIXELS^2 (the paper's
view/channel ratios preserved); reported seconds come from the calibrated
Titan X / Xeon models on the paper's full 512^2 geometry.  See DESIGN.md §2
and EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import ExperimentContext

#: Override via environment for a bigger (slower, higher-fidelity) run.
BENCH_PIXELS = int(os.environ.get("REPRO_BENCH_PIXELS", "64"))
BENCH_CASES = int(os.environ.get("REPRO_BENCH_CASES", "3"))


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(n_pixels=BENCH_PIXELS, n_cases=BENCH_CASES)


def report(title: str, body: str) -> None:
    """Uniform experiment banner in the benchmark output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

"""Table 2 — A-matrix representation (float/char) and path (global/texture).

Paper (execution seconds and unified-L1/texture hit rate):

    (Global, float)   0.48
    (Texture, float)  0.45   41.78 % hit
    (Global, char)    0.44
    (Texture, char)   0.41   60.36 % hit   -> net 1.17x speedup

The times come from the full-size model; additionally the hit-rate
*mechanism* is demonstrated by streaming real (scaled) A-matrix addresses
through the 24 KB set-associative texture-cache simulator.
"""

from __future__ import annotations

from conftest import report

from repro.harness import run_table2


def bench_table2(ctx):
    result = run_table2(ctx)
    report(
        "TABLE 2 — Impact of shrinking the A-matrix and reading via texture",
        result.format() + "\npaper: 0.48 / 0.45 / 0.44 / 0.41 s; hits 41.78 / 60.36 %",
    )
    times = {r["config"]: r["time"] for r in result.rows}
    # Strict paper ordering.
    assert (
        times["(Texture, char)"]
        < times["(Global, char)"]
        < times["(Texture, float)"]
        < times["(Global, float)"]
    )
    # Net speedup ~1.17x.
    net = times["(Global, float)"] / times["(Texture, char)"]
    assert 1.05 < net < 1.45
    # Model hit rates are the paper's; the cache sim shows the same gap.
    sims = {r["config"]: r["sim_hit"] for r in result.rows if r["sim_hit"] is not None}
    assert sims["(Texture, char)"] > sims["(Texture, float)"]
    return result


def test_table2(benchmark, ctx):
    benchmark.pedantic(bench_table2, args=(ctx,), rounds=1, iterations=1)

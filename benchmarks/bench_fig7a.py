"""Fig. 7a — SuperVoxel side length vs performance and convergence.

Paper: execution time is U-shaped with the best side at 33 ("it achieves
the highest L2 throughput"; smaller sides suffer atomic contention and
per-SV overheads, larger sides overflow the L2); the number of equits
*increases* with SV side ("updates to the error sinogram occur at coarser
granularity, slowing down the algorithmic convergence").
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.harness import run_fig7a


def bench_fig7a(ctx):
    result = run_fig7a(ctx)
    report(
        "FIG 7a — SuperVoxel side length (time modeled, equits measured)",
        result.format() + "\npaper: best side 33; equits grow with side",
    )
    sides = [r["side"] for r in result.rows]
    eq_times = np.array([r["equit_time"] for r in result.rows])
    # Model time per equit is U-shaped with the minimum in the paper's zone.
    assert result.rows[0]["equit_time"] > eq_times.min()  # side 9 worse
    best_model_side = sides[int(np.argmin(eq_times))]
    assert best_model_side in (25, 33, 41)
    # The paper's equits-grow-with-side slope is a ~20% effect that scaled
    # problems do not resolve (EXPERIMENTS.md); assert only that measured
    # equits stay in a sane band across the sweep.  The convergence cost of
    # coarser error updates is demonstrated directly by Fig 7d and the
    # staleness ablation.
    equits = np.array([r["equits"] for r in result.rows])
    assert equits.max() < 2.0 * equits.min()
    assert np.all(equits > 0)
    return result


def test_fig7a(benchmark, ctx):
    benchmark.pedantic(bench_fig7a, args=(ctx,), rounds=1, iterations=1)

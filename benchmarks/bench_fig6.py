"""Fig. 6 — speedup of the data-layout transformation vs chunk width.

Paper: "The chunk width of 32 performs the best, obtaining a speedup of
2.1X.  Widths that are multiples of warp size (i.e. 32) perform better
because they achieve aligned memory accesses."
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.harness import run_fig6


def bench_fig6(ctx):
    result = run_fig6(ctx)
    report(
        "FIG 6 — Data-layout transformation speedup vs chunk width",
        result.format() + "\npaper: best = 32 at 2.1x",
    )
    assert result.best_width == 32
    best = max(result.speedups)
    assert 1.6 < best < 2.7  # paper: 2.1x
    by_width = dict(zip(result.widths, result.speedups))
    # Small widths under-perform (narrow requests), large widths pay padding.
    assert by_width[4] < by_width[32]
    assert by_width[128] < by_width[32]
    # Warp-size multiples beat the unaligned neighbor below them.
    assert by_width[64] >= by_width[48] * 0.95
    return result


def test_fig6(benchmark, ctx):
    benchmark.pedantic(bench_fig6, args=(ctx,), rounds=1, iterations=1)

"""Table 1 — overall PSV-ICD vs GPU-ICD vs sequential-ICD comparison.

Paper (512^2, 3200 slices):

    PSV-ICD: mean 1.801 s, 138.26x over sequential, std 0.535, SV side 13,
             4.8 equits, 0.41 s/equit
    GPU-ICD: mean 0.407 s, 611.79x over sequential (4.43x over PSV-ICD),
             std 0.083, SV side 33, 5.9 equits, 0.07 s/equit

We reproduce the same decomposition (measured equits x modeled full-size
time per equit) over the synthetic ensemble.  Absolute equits at the scaled
problem size are larger than the paper's (documented in EXPERIMENTS.md);
the orderings and factor magnitudes are the reproduction targets.
"""

from __future__ import annotations

from conftest import report

from repro.harness import run_table1


def bench_table1(ctx):
    result = run_table1(ctx)
    report(
        "TABLE 1 — Comparison of PSV-ICD and GPU-ICD MBIR performance",
        result.format()
        + "\npaper: PSV-ICD 1.801 s (138.26x), GPU-ICD 0.407 s (611.79x, 4.43x over PSV)",
    )
    rows = {r["method"]: r for r in result.rows}
    # Reproduction assertions: orderings and rough factors.
    assert rows["GPU-ICD"]["mean_time"] < rows["PSV-ICD"]["mean_time"]
    assert rows["PSV-ICD"]["mean_time"] < rows["Sequential-ICD"]["mean_time"]
    assert 2.0 < rows["GPU-ICD"]["speedup_psv"] < 10.0
    assert rows["GPU-ICD"]["speedup_seq"] > 100.0
    assert 0.05 < rows["GPU-ICD"]["time_per_equit"] < 0.09
    assert 0.3 < rows["PSV-ICD"]["time_per_equit"] < 0.5
    return result


def test_table1(benchmark, ctx):
    benchmark.pedantic(bench_table1, args=(ctx,), rounds=1, iterations=1)

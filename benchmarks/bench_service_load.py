"""Gateway load benchmark — the service under sustained HTTP traffic.

Where ``bench_service.py`` measures the in-process queueing system, this
drives the whole network path: ``ThreadingHTTPServer`` handler threads,
JSON parsing, scan-cache lookups, admission control, scheduler workers,
result-npz spooling — with :mod:`repro.service.loadgen` as the client.

Three phases, one gateway:

* **closed loop** — ``CLOSED_JOBS`` mixed-priority ICD jobs at 16^2 from
  ``CONCURRENCY`` client threads, seeds spread over ``DISTINCT_SEEDS`` so
  sustained load mixes fresh reconstructions with content-addressed cache
  hits (the steady state of a real deployment).  Reports p50/p95/p99
  end-to-end latency and throughput.
* **open loop** — ``OPEN_JOBS`` arrivals at ``OPEN_RATE`` jobs/sec against
  the same warm cache: the arrival process never stalls on backpressure,
  so the 429 rate is measured rather than hidden.
* **backpressure** — a second service with ``max_queue_depth=2`` and a
  parked worker pool, hammered open-loop: 429s *must* appear (admission
  control visibly works over HTTP) and nothing may 5xx.

Across all phases the benchmark asserts **zero server-side 5xx** — the
PR-7 concurrency fixes are exactly what this guards (the pre-fix cache
write race failed ~15% of concurrent duplicate jobs).

Emit mode: ``REPRO_BENCH_JSON=path.json`` writes the machine-readable
report (CI uploads it as the ``BENCH_7.json`` perf-trajectory artifact;
the checked-in ``BENCH_7.json`` was produced this way).  CI-size knobs:
``REPRO_LOAD_JOBS`` scales the closed/open job counts.
"""

from __future__ import annotations

import json
import os
import platform
import threading

from conftest import report

from repro.ct import build_system_matrix, scaled_geometry, shepp_logan, simulate_scan
from repro.io import save_scan
from repro.service import HttpGateway, ReconstructionService
from repro.service.loadgen import default_spec_factory, run_load
from repro.service.runner import clear_system_cache

#: Image side for generated jobs (network/service overhead, not kernels).
PIXELS = 16
#: Closed-loop submissions (override with REPRO_LOAD_JOBS for CI sizing).
CLOSED_JOBS = int(os.environ.get("REPRO_LOAD_JOBS", "120"))
#: Open-loop submissions ride at half the closed count.
OPEN_JOBS = max(10, CLOSED_JOBS // 2)
#: Open-loop arrival rate, jobs/sec — intentionally above the service's
#: fresh-compute rate so queueing (not the client) is what's measured.
OPEN_RATE = float(os.environ.get("REPRO_LOAD_RATE", "30"))
#: Client threads (closed loop) / completion watchers (open loop).
CONCURRENCY = 6
#: Seeds cycle over this many values: dedup-heavy sustained load.
DISTINCT_SEEDS = 6
#: Per-job end-to-end SLO for the violation count.
SLO_S = float(os.environ.get("REPRO_LOAD_SLO_S", "30"))

PARAMS = {"max_equits": 1.0, "track_cost": False}


def _spec_factory():
    return default_spec_factory(
        driver="icd",
        scan="scan.npz",
        params=PARAMS,
        priorities=(0, 1, 2),
        distinct_seeds=DISTINCT_SEEDS,
    )


def bench_service_load(tmp_path):
    system = build_system_matrix(scaled_geometry(PIXELS))
    scan = simulate_scan(shepp_logan(PIXELS), system, seed=0)
    save_scan(tmp_path / "scan.npz", scan)
    clear_system_cache()

    phases: dict[str, dict] = {}
    lines = []

    # -- phases 1+2: one gateway, closed then open loop ------------------
    service = ReconstructionService(
        n_workers=2, cache_dir=tmp_path / "cache", start=True
    )
    with HttpGateway(service, scan_root=tmp_path, own_service=True) as gw:
        closed = run_load(
            gw.url,
            mode="closed",
            n_jobs=CLOSED_JOBS,
            concurrency=CONCURRENCY,
            spec_factory=_spec_factory(),
            slo_s=SLO_S,
        )
        phases["closed"] = closed.to_dict()
        lines += [closed.format(), ""]

        open_loop = run_load(
            gw.url,
            mode="open",
            n_jobs=OPEN_JOBS,
            rate=OPEN_RATE,
            concurrency=CONCURRENCY,
            spec_factory=_spec_factory(),
            slo_s=SLO_S,
        )
        phases["open"] = open_loop.to_dict()
        lines += [open_loop.format(), ""]

    # -- phase 3: backpressure -------------------------------------------
    # Tiny queue, parked workers: every submission beyond depth 2 must be
    # turned away with a 429, and none of it may 5xx.
    bp_service = ReconstructionService(
        n_workers=1,
        max_queue_depth=2,
        cache_dir=tmp_path / "bp-cache",
        start=True,
    )
    bp_service.scheduler.stop(wait=True)
    with HttpGateway(
        bp_service, scan_root=tmp_path, own_service=True, retry_after_s=0.05
    ) as gw:
        # All 20 arrivals land within ~0.1 s against the parked depth-2
        # queue; the scheduler wakes shortly after so the admitted jobs
        # finish and the completion watchers exit promptly.
        threading.Timer(0.5, bp_service.scheduler.start).start()
        backpressure = run_load(
            gw.url,
            mode="open",
            n_jobs=20,
            rate=200.0,
            concurrency=2,
            spec_factory=_spec_factory(),
            fetch_results=False,
            drain_timeout_s=60.0,
        )
        bp_metrics = gw.metrics_text()
    phases["backpressure"] = backpressure.to_dict()
    lines += [backpressure.format()]

    report(
        f"SERVICE LOAD — HTTP gateway, {CLOSED_JOBS}+{OPEN_JOBS}+20 jobs "
        f"at {PIXELS}^2",
        "\n".join(lines),
    )

    emit_path = os.environ.get("REPRO_BENCH_JSON")
    if emit_path:
        doc = {
            "bench": "service_load",
            "pixels": PIXELS,
            "python": platform.python_version(),
            "concurrency": CONCURRENCY,
            "distinct_seeds": DISTINCT_SEEDS,
            "phases": phases,
        }
        with open(emit_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")

    # Guards — the load harness is a regression net, not just a stopwatch.
    for name, phase in phases.items():
        assert phase["server_errors_5xx"] == 0, (
            f"{name}: {phase['server_errors_5xx']} 5xx responses under load"
        )
    assert phases["closed"]["completed"] == CLOSED_JOBS, phases["closed"]
    assert phases["closed"]["slo_violations"] == 0, phases["closed"]
    # Sustained closed-loop traffic with cycling seeds must hit the cache.
    assert phases["closed"]["status_counts"]["201"] >= CLOSED_JOBS
    # Backpressure: admission control visibly at work over HTTP, with the
    # rejections surfaced in the Prometheus endpoint too.
    assert phases["backpressure"]["rejected_429"] > 0, phases["backpressure"]
    assert 'name="http.jobs_rejected_429"' in bp_metrics
    return phases


def test_service_load(benchmark, tmp_path):
    benchmark.pedantic(bench_service_load, args=(tmp_path,), rounds=1, iterations=1)

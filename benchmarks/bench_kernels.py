"""Kernel microbenchmark — voxel-updates/sec per kernel on the suite slice.

Contenders, slowest first:

* ``baseline``   — the pre-kernel-layer driver loop: per-voxel
  ``column_slice`` + footprint re-gather + ``update_voxel`` (what
  ``icd_reconstruct`` executed before the kernel layer existed);
* ``python``     — ``kernel="python"``: the same per-voxel updater calls
  with the footprint-index views hoisted once per run (the equivalence
  oracle);
* ``vectorized`` — the pure-NumPy fused kernel;
* ``numba``      — the compiled kernel (only when importable).

All contenders are run interleaved (machine noise on shared runners swings
single timings by tens of percent; best-of-N of interleaved trials is
stable) and each must reproduce the oracle's image and error sinogram
**bit-for-bit** before its timing counts.

The assertion tiers reflect what pure-NumPy can honestly deliver under the
bit-exactness contract: the strict-sequential cumsum reductions and scalar
surrogate solves it shares with the oracle put a floor on per-voxel cost,
so the vectorized kernel lands around 2-3x the hoisted oracle (and ~3x the
pre-kernel-layer baseline) rather than the 10x+ a compiled kernel reaches.
We hard-assert >= 2x over the oracle as the regression guard, and >= 10x
for Numba where available.

Emit mode: set ``REPRO_BENCH_JSON=path.json`` to additionally write the
measured numbers as a machine-readable report (CI uploads it as the
``BENCH_<pr>.json`` perf-trajectory artifact; the checked-in ``BENCH_2.json``
was produced this way).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np
from conftest import report

from repro.core import SuperVoxelGrid, default_prior, initial_image
from repro.core.backends import make_backend, run_wave
from repro.core.kernels import HAVE_NUMBA, run_sv_visit, run_sweep
from repro.core.prior import shared_neighborhood
from repro.core.sv_engine import process_supervoxel
from repro.core.voxel_update import SliceUpdater
from repro.utils import resolve_rng

#: Interleaved timing trials per contender; best-of is reported.
TRIALS = 5
#: Hard floor for the vectorized kernel vs the python oracle.  Typical
#: measurements are 2.1-2.5x; the floor sits below the noise band so the
#: assert trips on real regressions, not on a busy machine.
VEC_MIN_SPEEDUP = 1.8
#: Hard floor for the numba kernel vs the python oracle.
NUMBA_MIN_SPEEDUP = 10.0


def _baseline_sweep(updater, order, x, e, zero_skip):
    """The pre-kernel-layer icd_reconstruct inner loop, verbatim."""
    indices = updater.system.matrix.indices
    updates = 0
    for j in order:
        if zero_skip and updater.should_skip(j, x):
            continue
        sl = updater.column_slice(j)
        updater.update_voxel(j, x, e, indices[sl])
        updates += 1
    return updates


def _time_sweep(contender, kctx, updater, order, x0, e0):
    """One timed full-image sweep; returns (updates/sec, x, e)."""
    x = x0.copy()
    e = e0.copy()
    t0 = time.perf_counter()
    if contender == "baseline":
        updates = _baseline_sweep(updater, order, x, e, zero_skip=True)
    else:
        updates = run_sweep(kctx, order, x, e, zero_skip=True, kernel=contender)
    dt = time.perf_counter() - t0
    return updates / dt, x, e


def _time_sv_wave(contender, kctx, updater, grid, x0, e0, stale_width):
    """One timed pass over all SVs (GPU-style waves); returns updates/sec."""
    x = x0.copy()
    e = e0.copy()
    total = 0
    t0 = time.perf_counter()
    for sv in grid.svs:
        svb = sv.extract(e)
        order = resolve_rng(11 + sv.index).permutation(sv.n_voxels)
        if contender == "python":
            # Per-voxel oracle path over the same order/waves.
            from repro.core.sv_engine import process_supervoxel

            stats = process_supervoxel(
                sv, updater, x, svb,
                rng=resolve_rng(11 + sv.index),
                zero_skip=True, stale_width=stale_width,
            )
            total += stats.updates
        else:
            updates, _, _ = run_sv_visit(
                kctx, sv, order, x, svb,
                zero_skip=True, stale_width=stale_width, kernel=contender,
            )
            total += updates
        valid = sv.gather_idx >= 0
        e[sv.gather_idx[valid]] = svb[valid]
    dt = time.perf_counter() - t0
    return total / dt


#: Wave width for the backend throughput comparison (the paper's core count
#: is 16; 8 keeps every wave full on the small benchmark grid).
BACKEND_WAVE_WIDTH = 8
#: Pool size for the thread/process backend contenders.
BACKEND_WORKERS = min(4, os.cpu_count() or 1)


def _time_inline_waves(updater, grid, x0, e0, kernel):
    """The drivers' inline wave emulation over all SVs; updates/sec."""
    x = x0.copy()
    e = e0.copy()
    svs = list(range(grid.n_svs))
    total = 0
    t0 = time.perf_counter()
    for start in range(0, len(svs), BACKEND_WAVE_WIDTH):
        wave = svs[start : start + BACKEND_WAVE_WIDTH]
        svbs, originals = [], []
        for sv_id in wave:
            svb = grid.svs[sv_id].extract(e)
            originals.append(svb.copy())
            svbs.append(svb)
        for sv_id, svb in zip(wave, svbs):
            sv = grid.svs[sv_id]
            stats = process_supervoxel(
                sv, updater, x, svb, rng=resolve_rng(11 + sv.index),
                zero_skip=True, stale_width=1, kernel=kernel,
            )
            total += stats.updates
        for sv_id, svb, orig in zip(wave, svbs, originals):
            grid.svs[sv_id].accumulate_delta(svb, orig, e)
    dt = time.perf_counter() - t0
    return total / dt, x, e


def _time_backend_waves(backend, grid, x0, e0, kernel):
    """All SVs through ``backend`` in waves; returns (updates/sec, x, e)."""
    x = x0.copy()
    e = e0.copy()
    svs = list(range(grid.n_svs))
    total = 0
    t0 = time.perf_counter()
    for start in range(0, len(svs), BACKEND_WAVE_WIDTH):
        wave = svs[start : start + BACKEND_WAVE_WIDTH]
        stats = run_wave(backend, wave, x, e, base_seed=1, kernel=kernel)
        total += sum(s.updates for s in stats)
    dt = time.perf_counter() - t0
    return total / dt, x, e


def _bench_backend_waves(ctx, updater, grid, x0, e0):
    """Wave throughput: inline emulation vs serial/thread/process backends.

    The backend contenders must be bit-identical to each other (snapshot
    isolation + deterministic merge — the cross-backend contract); inline
    is timed as the reference execution model but checked only for shape,
    since its visibility semantics legitimately differ.
    """
    kernel = "numba" if HAVE_NUMBA else "vectorized"
    scan = ctx.scan(ctx.cases[0])
    backends = {
        "serial": make_backend("serial", updater=updater, grid=grid),
        "thread": make_backend(
            "thread", updater=updater, grid=grid, n_workers=BACKEND_WORKERS
        ),
        "process": make_backend(
            "process", updater=updater, grid=grid, scan=scan, system=ctx.system,
            prior=default_prior(), n_workers=BACKEND_WORKERS,
        ),
    }
    best = {"inline": 0.0, **{name: 0.0 for name in backends}}
    try:
        # Warmup + cross-backend bit-identity check.
        _, x_ref, e_ref = _time_backend_waves(backends["serial"], grid, x0, e0, kernel)
        for name, backend in backends.items():
            _, x_b, e_b = _time_backend_waves(backend, grid, x0, e0, kernel)
            assert np.array_equal(x_b, x_ref), f"{name}: image not bit-equal to serial"
            assert np.array_equal(e_b, e_ref), f"{name}: error sinogram not bit-equal"
        for _ in range(TRIALS):
            ups, _, _ = _time_inline_waves(updater, grid, x0, e0, kernel)
            best["inline"] = max(best["inline"], ups)
            for name, backend in backends.items():
                ups, _, _ = _time_backend_waves(backend, grid, x0, e0, kernel)
                best[name] = max(best[name], ups)
    finally:
        for backend in backends.values():
            backend.close()
    return best, kernel


def _emit_json(path, n_pixels, sv_side, stale_width, best, wave_best,
               backend_best, backend_kernel):
    """Write the measured throughputs as the perf-trajectory JSON report."""
    oracle = best["python"]
    payload = {
        "bench": "kernels",
        "pixels": n_pixels,
        "trials": TRIALS,
        "numba": HAVE_NUMBA,
        "python": platform.python_version(),
        "sweep_updates_per_s": {k: round(v, 1) for k, v in best.items()},
        "sweep_speedup_vs_python": {k: round(v / oracle, 3) for k, v in best.items()},
        "wave": {
            "stale_width": stale_width,
            "sv_side": sv_side,
            "updates_per_s": {k: round(v, 1) for k, v in wave_best.items()},
            "speedup_vs_python": {
                k: round(v / wave_best["python"], 3) for k, v in wave_best.items()
            },
        },
        "backend_wave": {
            "kernel": backend_kernel,
            "wave_width": BACKEND_WAVE_WIDTH,
            "workers": BACKEND_WORKERS,
            "updates_per_s": {k: round(v, 1) for k, v in backend_best.items()},
            "speedup_vs_inline": {
                k: round(v / backend_best["inline"], 3) for k, v in backend_best.items()
            },
        },
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def bench_kernels(ctx):
    case = ctx.cases[0]
    scan = ctx.scan(case)
    system = ctx.system
    n = ctx.n_pixels
    updater = SliceUpdater(system, scan, default_prior(), shared_neighborhood(n))
    kctx = updater.context()

    x0 = initial_image(scan).ravel().copy()
    e0 = updater.initial_error(x0)
    order = resolve_rng(0).permutation(n * n)

    contenders = ["baseline", "python", "vectorized"] + (["numba"] if HAVE_NUMBA else [])

    # Warmup: builds the fast pack / compiles the numba kernel, and pins
    # down the oracle outputs every contender must reproduce exactly.
    _, x_ref, e_ref = _time_sweep("python", kctx, updater, order, x0, e0)
    for c in contenders:
        _, x_c, e_c = _time_sweep(c, kctx, updater, order, x0, e0)
        assert np.array_equal(x_c, x_ref), f"{c}: image not bit-equal to oracle"
        assert np.array_equal(e_c, e_ref), f"{c}: error sinogram not bit-equal"

    # Interleaved best-of trials.
    best = {c: 0.0 for c in contenders}
    for _ in range(TRIALS):
        for c in contenders:
            ups, _, _ = _time_sweep(c, kctx, updater, order, x0, e0)
            best[c] = max(best[c], ups)

    # SV-wave mode (GPU-ICD-style stale waves), python vs fast kernels.
    grid = SuperVoxelGrid(system, max(8, n // 8))
    stale = 8
    for sv in grid.svs:  # warm per-SV pads outside the timed region
        prep = kctx.sv_prep(sv)
        prep.build_pads(kctx)
    wave_contenders = ["python", "vectorized"] + (["numba"] if HAVE_NUMBA else [])
    wave_best = {c: 0.0 for c in wave_contenders}
    for _ in range(TRIALS):
        for c in wave_contenders:
            ups = _time_sv_wave(c, kctx, updater, grid, x0, e0, stale)
            wave_best[c] = max(wave_best[c], ups)

    oracle = best["python"]
    lines = [f"{n}x{n} suite slice, full-image sweep (best of {TRIALS} interleaved trials)"]
    lines.append(f"{'kernel':12s} {'updates/s':>12s} {'vs python':>10s} {'vs baseline':>12s}")
    for c in contenders:
        lines.append(
            f"{c:12s} {best[c]:12.0f} {best[c] / oracle:9.2f}x {best[c] / best['baseline']:11.2f}x"
        )
    lines.append("")
    lines.append(f"SV waves (stale_width={stale}, sv_side={grid.sv_side})")
    for c in wave_contenders:
        lines.append(
            f"{c:12s} {wave_best[c]:12.0f} {wave_best[c] / wave_best['python']:9.2f}x"
        )

    # Execution-backend wave throughput (inline emulation vs real backends).
    backend_best, backend_kernel = _bench_backend_waves(ctx, updater, grid, x0, e0)
    lines.append("")
    lines.append(
        f"backend waves (kernel={backend_kernel}, width={BACKEND_WAVE_WIDTH}, "
        f"workers={BACKEND_WORKERS})"
    )
    for c, ups in backend_best.items():
        lines.append(f"{c:12s} {ups:12.0f} {ups / backend_best['inline']:9.2f}x")
    report("KERNELS — voxel-updates/sec per kernel", "\n".join(lines))

    emit_path = os.environ.get("REPRO_BENCH_JSON")
    if emit_path:
        _emit_json(emit_path, n, grid.sv_side, stale, best, wave_best,
                   backend_best, backend_kernel)

    assert best["vectorized"] >= VEC_MIN_SPEEDUP * oracle, (
        f"vectorized kernel regressed: {best['vectorized']:.0f} vs "
        f"{oracle:.0f} updates/s ({best['vectorized'] / oracle:.2f}x < {VEC_MIN_SPEEDUP}x)"
    )
    if HAVE_NUMBA:
        assert best["numba"] >= NUMBA_MIN_SPEEDUP * oracle, (
            f"numba kernel below target: {best['numba'] / oracle:.2f}x < {NUMBA_MIN_SPEEDUP}x"
        )
    return best


def test_kernels(benchmark, ctx):
    benchmark.pedantic(bench_kernels, args=(ctx,), rounds=1, iterations=1)

"""Fig. 7d — SVs per kernel launch (batch size).

Paper: "The lower this number, the higher the total number of kernel
launches, resulting in higher overheads ...  If the number gets too high,
then updates to error sinogram start taking place at coarser granularity,
leading to slower algorithmic convergence."  The second effect is a
*convergence* effect, so this bench measures it with real scaled runs.
"""

from __future__ import annotations

from conftest import report

from repro.harness import run_fig7d


def bench_fig7d(ctx):
    result = run_fig7d(ctx, measure_convergence=True)
    eq = result.extra["equits"]
    tot = result.extra["total_times"]
    lines = ["Batch  s/Equit(model)  Equits(measured)  Total(s)"]
    for v, t in zip(result.values, result.equit_times):
        lines.append(f"{v:5d}  {t:13.4f}  {eq[v]:16.2f}  {tot[v]:8.3f}")
    report(
        "FIG 7d — SVs per batch (kernel launch)",
        "\n".join(lines) + "\npaper: small batches pay launch overhead, large slow convergence",
    )
    t = dict(zip(result.values, result.equit_times))
    # Launch overhead penalises tiny batches in the hardware model.
    assert t[2] > 1.3 * t[32]
    # Convergence does not improve with very large batches.
    assert eq[128] >= eq[8] * 0.9
    return result


def test_fig7d(benchmark, ctx):
    benchmark.pedantic(bench_fig7d, args=(ctx,), rounds=1, iterations=1)

"""Ablations beyond the paper's tables — design choices DESIGN.md calls out.

* **Prior family** — the paper fixes the q-GGMRF; quadratic vs q-GGMRF
  changes reconstruction character (edge preservation) at similar cost.
* **SV selection policy** — Alg. 2/3's all / top-k / random alternation vs
  plain everything-every-iteration.
* **Intra-SV staleness** — the paper *suspects* "the intra-SV parallelism
  slows the convergence" (§5.4); the emulation quantifies it.
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.core import (
    GPUICDParams,
    QGGMRFPrior,
    QuadraticPrior,
    gpu_icd_reconstruct,
    psv_icd_reconstruct,
    rmse_hu,
)
from repro.ct.phantoms import MU_WATER
from repro.harness import scaled_gpu_params


def bench_prior_ablation(ctx):
    case = ctx.cases[0]
    scan = ctx.scan(case)
    lines = ["Prior            RMSE-vs-phantom(HU)  Equits-to-cost-plateau"]
    rows = {}
    for name, prior in [
        ("q-GGMRF(q=1.2)", QGGMRFPrior(sigma=2.0 * MU_WATER, q=1.2, T=1.0)),
        ("quadratic", QuadraticPrior(sigma=2.0 * MU_WATER)),
    ]:
        res = psv_icd_reconstruct(
            scan, ctx.system, prior=prior, sv_side=8, max_equits=12, seed=0,
        )
        costs = res.history.costs
        plateau = next(
            (r.equits for r, c0, c1 in zip(res.history.records[1:], costs, costs[1:])
             if c0 - c1 < 1e-4 * abs(costs[0])),
            res.history.equits,
        )
        err = rmse_hu(res.image, case.image)
        rows[name] = (err, plateau)
        lines.append(f"{name:16s} {err:18.1f}  {plateau:10.2f}")
    report("ABLATION — prior family", "\n".join(lines))
    # The edge-preserving prior should not be worse than quadratic.
    assert rows["q-GGMRF(q=1.2)"][0] <= rows["quadratic"][0] * 1.1
    return rows


def bench_selection_ablation(ctx):
    """NH-style selection (top-k/random alternation) vs full sweeps."""
    case = ctx.cases[0]
    scan = ctx.scan(case)
    golden = ctx.golden(case)
    lines = ["Policy                 Equits-to-15HU"]
    equits = {}
    for name, fraction in [("alternating 20%", 0.20), ("alternating 50%", 0.50),
                           ("full sweeps", 1.0)]:
        res = psv_icd_reconstruct(
            scan, ctx.system, sv_side=8, fraction=fraction, max_equits=ctx.max_equits,
            golden=golden, stop_rmse=15.0, seed=0, track_cost=False,
        )
        eq = res.history.converged_equits or res.history.equits
        equits[name] = eq
        lines.append(f"{name:22s} {eq:8.2f}")
    report("ABLATION — SuperVoxel selection policy", "\n".join(lines))
    # Focused selection is competitive with (usually better than) full sweeps.
    assert equits["alternating 20%"] <= equits["full sweeps"] * 1.3
    return equits


def bench_staleness_ablation(ctx):
    """Equits to converge vs intra-SV concurrency width."""
    case = ctx.cases[0]
    scan = ctx.scan(case)
    golden = ctx.golden(case)
    base = scaled_gpu_params(ctx.n_pixels)
    lines = ["TB/SV(stale width)  Equits-to-15HU"]
    eqs = {}
    for tb in (1, 4, 16):
        p = GPUICDParams(
            sv_side=base.sv_side, threadblocks_per_sv=tb, batch_size=base.batch_size
        )
        res = gpu_icd_reconstruct(
            scan, ctx.system, params=p, max_equits=ctx.max_equits, golden=golden,
            stop_rmse=15.0, seed=0, track_cost=False,
        )
        eqs[tb] = res.history.converged_equits or res.history.equits
        lines.append(f"{tb:18d}  {eqs[tb]:8.2f}")
    report(
        "ABLATION — intra-SV staleness (the §5.4 conjecture, quantified)",
        "\n".join(lines),
    )
    # Staleness never improves convergence appreciably.
    assert eqs[16] >= eqs[1] * 0.9
    return eqs


def test_ablation_priors(benchmark, ctx):
    benchmark.pedantic(bench_prior_ablation, args=(ctx,), rounds=1, iterations=1)


def test_ablation_selection(benchmark, ctx):
    benchmark.pedantic(bench_selection_ablation, args=(ctx,), rounds=1, iterations=1)


def test_ablation_staleness(benchmark, ctx):
    benchmark.pedantic(bench_staleness_ablation, args=(ctx,), rounds=1, iterations=1)

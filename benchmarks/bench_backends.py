"""Backend wave-throughput benchmark — the parallel-execution perf gate.

BENCH_3.json measured the pool backends at 64^2 with a single worker, so
the parallel paths never had a chance: dispatch overhead dominated and
``process`` landed at 0.585x inline.  This bench fixes the methodology:

* a realistic slice (default 256^2 — ``REPRO_BENCH_BACKEND_PIXELS``),
* a workers sweep (1 / 2 / 4) over the ``thread`` and ``process`` pools,
* the pipelined ``run_waves`` path for the 2-worker pools, and
* per-config voxel-updates/sec with speedup-vs-inline.

Every pool configuration must reproduce the serial backend's image and
error sinogram **bit-for-bit** before its timing counts (the cross-backend
contract); inline is timed as the reference execution model but checked
only for shape, since its visibility semantics legitimately differ.

Emit mode: set ``REPRO_BENCH_BACKENDS_JSON=path.json`` to write the
measured numbers as the machine-readable report (the checked-in
``BENCH_6.json`` was produced this way; CI uploads its run as an
artifact).  The report records ``cpu_count`` — speedups are only
meaningful where the sweep actually had cores to use.

Perf-smoke mode: set ``REPRO_BENCH_BACKEND_ASSERT=1`` to check whether
``process`` at 2 workers keeps within a 5 % tolerance of inline (best of
``TRIALS`` interleaved trials).  A miss is *advisory*: it is reported and
emitted as a GitHub ``::warning`` annotation, but does not fail the run —
wall-clock asserts on shared CI runners are inherently flaky under
noisy-neighbor load.  Set ``REPRO_BENCH_BACKEND_ASSERT=strict`` to make a
miss raise instead (perf work on a quiet machine).  The check is skipped
(with a visible note) on single-core machines, where a worker pool cannot
beat a loop that never pays dispatch costs.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np
from conftest import report

from repro.core import SuperVoxelGrid, default_prior, initial_image
from repro.core.backends import make_backend, make_wave_tasks
from repro.core.kernels import HAVE_NUMBA
from repro.core.prior import shared_neighborhood
from repro.core.sv_engine import process_supervoxel
from repro.core.voxel_update import SliceUpdater
from repro.ct import build_system_matrix, scaled_geometry, shepp_logan, simulate_scan
from repro.utils import resolve_rng

#: Slice size for the backend sweep (the kernels bench stays at 64^2; the
#: backend comparison needs enough work per wave to amortise dispatch).
BACKEND_PIXELS = int(os.environ.get("REPRO_BENCH_BACKEND_PIXELS", "256"))
#: Worker counts swept for the thread/process pools.
WORKER_SWEEP = (1, 2, 4)
#: SVs per wave (the paper's CPU core count is 16).
WAVE_WIDTH = 16
#: Waves per timed pass — bounds the pass so the sweep stays tractable.
N_WAVES = int(os.environ.get("REPRO_BENCH_BACKEND_WAVES", "8"))
#: Interleaved timing trials per config; best-of is reported.
TRIALS = int(os.environ.get("REPRO_BENCH_BACKEND_TRIALS", "3"))
#: Perf-smoke tolerance: process@2 must reach this fraction of inline.
SMOKE_TOLERANCE = 0.95


def _wave_schedule(grid, kernel):
    """The fixed wave schedule every contender executes.

    Per-wave base seeds are drawn once here; :func:`make_wave_tasks` keys
    each SV's stream off ``(base_seed, sv_index)``, so sequential
    ``run_wave`` and pipelined ``run_waves`` consume identical streams.
    """
    svs = list(range(min(grid.n_svs, N_WAVES * WAVE_WIDTH)))
    waves = [svs[s : s + WAVE_WIDTH] for s in range(0, len(svs), WAVE_WIDTH)]
    return [
        make_wave_tasks(1 + k, wave, zero_skip=True, stale_width=1, kernel=kernel)
        for k, wave in enumerate(waves)
    ]


def _time_inline(schedule, updater, grid, x0, e0, kernel):
    """The drivers' inline wave emulation over the schedule; updates/sec."""
    x = x0.copy()
    e = e0.copy()
    total = 0
    t0 = time.perf_counter()
    for tasks in schedule:
        svbs, originals = [], []
        for t in tasks:
            svb = grid.svs[t.sv_index].extract(e)
            originals.append(svb.copy())
            svbs.append(svb)
        for t, svb in zip(tasks, svbs):
            sv = grid.svs[t.sv_index]
            stats = process_supervoxel(
                sv, updater, x, svb, rng=resolve_rng(t.seed),
                zero_skip=t.zero_skip, stale_width=t.stale_width, kernel=kernel,
            )
            total += stats.updates
        for t, svb, orig in zip(tasks, svbs, originals):
            grid.svs[t.sv_index].accumulate_delta(svb, orig, e)
    dt = time.perf_counter() - t0
    return total / dt, x, e


def _time_sequential(backend, schedule, x0, e0):
    """Schedule through ``backend.run_wave``, one wave at a time."""
    x = x0.copy()
    e = e0.copy()
    total = 0
    t0 = time.perf_counter()
    for tasks in schedule:
        stats = backend.run_wave(tasks, x, e)
        total += sum(s.updates for s in stats)
    dt = time.perf_counter() - t0
    return total / dt, x, e


def _time_pipelined(backend, schedule, x0, e0):
    """Whole schedule through the backend's two-deep ``run_waves`` pipeline."""
    x = x0.copy()
    e = e0.copy()
    t0 = time.perf_counter()
    per_wave = backend.run_waves(schedule, x, e)
    dt = time.perf_counter() - t0
    total = sum(s.updates for stats in per_wave for s in stats)
    return total / dt, x, e


def _emit_json(path, best, kernel, sv_side):
    """Write the measured throughputs as the perf-trajectory JSON report."""
    inline = best["inline"]
    payload = {
        "bench": "backends",
        "pixels": BACKEND_PIXELS,
        "sv_side": sv_side,
        "wave_width": WAVE_WIDTH,
        "n_waves": N_WAVES,
        "worker_sweep": list(WORKER_SWEEP),
        "trials": TRIALS,
        "cpu_count": os.cpu_count(),
        "numba": HAVE_NUMBA,
        "kernel": kernel,
        "python": platform.python_version(),
        "updates_per_s": {k: round(v, 1) for k, v in best.items()},
        "speedup_vs_inline": {k: round(v / inline, 3) for k, v in best.items()},
    }
    if (os.cpu_count() or 1) < 2:
        payload["note"] = (
            "measured on a single-core host: pool backends cannot beat an "
            "inline loop without cores to run on; rerun on >= 2 cores for a "
            "meaningful speedup gate"
        )
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def bench_backends():
    n = BACKEND_PIXELS
    geometry = scaled_geometry(n)
    system = build_system_matrix(geometry)
    prior = default_prior()
    scan = simulate_scan(shepp_logan(n), system, seed=0)
    sv_side = max(8, n // WAVE_WIDTH)
    grid = SuperVoxelGrid(system, sv_side)
    updater = SliceUpdater(system, scan, prior, shared_neighborhood(n))
    x0 = initial_image(scan).ravel().copy()
    e0 = updater.initial_error(x0)
    kernel = "numba" if HAVE_NUMBA else "vectorized"
    schedule = _wave_schedule(grid, kernel)

    pool_kwargs = dict(updater=updater, grid=grid)
    proc_kwargs = dict(**pool_kwargs, scan=scan, system=system, prior=prior)
    backends = {"serial": make_backend("serial", **pool_kwargs)}
    for w in WORKER_SWEEP:
        backends[f"thread@{w}"] = make_backend("thread", n_workers=w, **pool_kwargs)
        backends[f"process@{w}"] = make_backend("process", n_workers=w, **proc_kwargs)
    # Pipelined contenders reuse the 2-worker pools (persistent arenas —
    # reuse across passes is exactly what the bench should measure).
    timers = {name: (_time_sequential, b) for name, b in backends.items()}
    timers["thread@2+pipe"] = (_time_pipelined, backends["thread@2"])
    timers["process@2+pipe"] = (_time_pipelined, backends["process@2"])

    best = {"inline": 0.0, **{name: 0.0 for name in timers}}
    try:
        # Warmup + cross-backend bit-identity: every pool configuration
        # (including the pipelined ones) must match serial exactly.
        _, x_ref, e_ref = _time_sequential(backends["serial"], schedule, x0, e0)
        for name, (timer, backend) in timers.items():
            _, x_b, e_b = timer(backend, schedule, x0, e0)
            assert np.array_equal(x_b, x_ref), f"{name}: image not bit-equal to serial"
            assert np.array_equal(e_b, e_ref), f"{name}: error sinogram not bit-equal"
        _, x_i, _ = _time_inline(schedule, updater, grid, x0, e0, kernel)
        assert x_i.shape == x_ref.shape

        for _ in range(TRIALS):
            ups, _, _ = _time_inline(schedule, updater, grid, x0, e0, kernel)
            best["inline"] = max(best["inline"], ups)
            for name, (timer, backend) in timers.items():
                ups, _, _ = timer(backend, schedule, x0, e0)
                best[name] = max(best[name], ups)
    finally:
        for backend in backends.values():
            backend.close()

    inline = best["inline"]
    lines = [
        f"{n}x{n} slice, {len(schedule)} waves of {WAVE_WIDTH} SVs "
        f"(sv_side={sv_side}, kernel={kernel}, cpu_count={os.cpu_count()}, "
        f"best of {TRIALS} interleaved trials)"
    ]
    lines.append(f"{'config':16s} {'updates/s':>12s} {'vs inline':>10s}")
    for name in best:
        lines.append(f"{name:16s} {best[name]:12.0f} {best[name] / inline:9.2f}x")
    report("BACKENDS — wave throughput per execution backend", "\n".join(lines))

    emit_path = os.environ.get("REPRO_BENCH_BACKENDS_JSON")
    if emit_path:
        _emit_json(emit_path, best, kernel, sv_side)

    smoke = os.environ.get("REPRO_BENCH_BACKEND_ASSERT")
    if smoke:
        if (os.cpu_count() or 1) < 2:
            report(
                "BACKENDS — perf smoke",
                "single-core machine: process@2 vs inline check skipped",
            )
        else:
            ratio = best["process@2"] / inline
            verdict = (
                f"process@2 at {ratio:.2f}x inline "
                f"({best['process@2']:.0f} vs {inline:.0f} updates/s, "
                f"tolerance {SMOKE_TOLERANCE}x, best of {TRIALS} trials)"
            )
            if ratio >= SMOKE_TOLERANCE:
                report("BACKENDS — perf smoke", f"OK: {verdict}")
            elif smoke == "strict":
                # Opt-in hard gate for perf work on a quiet machine; CI
                # uses the advisory mode because shared runners make any
                # wall-clock assert flaky under noisy-neighbor load.
                raise AssertionError(f"process@2 regressed vs inline: {verdict}")
            else:
                report("BACKENDS — perf smoke", f"BELOW TOLERANCE: {verdict}")
                # GitHub annotation: visible on the workflow run without
                # failing the job on a transient runner slowdown.
                print(f"::warning title=backend perf smoke::{verdict}")
    return best


def test_backends(benchmark):
    benchmark.pedantic(bench_backends, rounds=1, iterations=1)

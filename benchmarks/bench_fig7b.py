"""Fig. 7b — threadblocks per SV (intra-SV parallelism granularity).

Paper: "The performance improves with the number of threadblocks used per
SV ... A moderately high number of threadblocks per SV achieves higher L2
temporal cache locality.  The performance saturates after 32 threadblocks."
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.harness import run_fig7b


def bench_fig7b(ctx):
    result = run_fig7b(ctx)
    report(
        "FIG 7b — Threadblocks per SuperVoxel",
        result.format() + "\npaper: improves with TB/SV, saturates after 32",
    )
    t = dict(zip(result.values, result.equit_times))
    # Strong improvement from 1 to 32.
    assert t[1] > 3.0 * t[32]
    # Monotone improvement through the unsaturated region.
    assert t[1] > t[4] > t[32]
    # Saturation: 40 and 64 within ~25% of 32.
    assert t[40] < 1.25 * t[32]
    assert t[64] < 1.3 * t[32]
    return result


def test_fig7b(benchmark, ctx):
    benchmark.pedantic(bench_fig7b, args=(ctx,), rounds=1, iterations=1)

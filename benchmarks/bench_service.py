"""Service benchmark — job throughput and end-to-end latency percentiles.

Measures the reconstruction service as a queueing system rather than the
kernels underneath it (those have ``bench_kernels.py``):

* **throughput** — jobs/sec through a drained batch of ``N_JOBS``
  mixed-priority ICD jobs at 16^2, for 1 and 2 workers.  The jobs are
  compute-bound and the GIL keeps NumPy-light work serialised, so 2-worker
  scaling is modest; the interesting number is the service overhead.
* **latency percentiles** — per-job submit→terminal wall time, p50/p90/p99
  over the batch.  With one worker the tail is dominated by queue wait
  (last job waits for every predecessor), which is exactly what a
  latency-vs-depth profile should show.
* **dedup speedup** — the same batch resubmitted against the warm result
  cache; every job is served from content-addressed storage, so the
  drain-time ratio is the cache's recomputation saving.
* **overhead floor** — a cache-hit-only drain divided by job count: the
  per-job cost of queue + scheduler + status machinery with no numerics
  at all.

Emit mode: set ``REPRO_BENCH_JSON=path.json`` to write the machine-readable
report (CI uploads it as the ``BENCH_5.json`` perf-trajectory artifact; the
checked-in ``BENCH_5.json`` was produced this way).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np
from conftest import report

from repro.ct import build_system_matrix, scaled_geometry, shepp_logan, simulate_scan
from repro.service import JobSpec, ReconstructionService
from repro.service.runner import clear_system_cache

#: Jobs per drained batch.
N_JOBS = 12
#: Image side for the benchmark scans (service overhead, not kernel speed).
PIXELS = 16
#: Worker counts to profile.
WORKER_COUNTS = (1, 2)


def _percentiles(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "p50_s": round(float(np.percentile(arr, 50)), 4),
        "p90_s": round(float(np.percentile(arr, 90)), 4),
        "p99_s": round(float(np.percentile(arr, 99)), 4),
        "mean_s": round(float(arr.mean()), 4),
    }


def _specs(scan, *, unique: bool):
    """A mixed-priority batch; ``unique=False`` makes every job identical."""
    return [
        JobSpec(
            driver="icd",
            scan=scan,
            params={
                "max_equits": 2.0,
                "seed": (i if unique else 0),
                "track_cost": False,
            },
            priority=i % 3,
        )
        for i in range(N_JOBS)
    ]


def _drain_batch(scan, *, n_workers: int, unique: bool, cache_dir=None):
    """Submit a batch, drain it, return (elapsed_s, per-job latencies)."""
    svc = ReconstructionService(n_workers=n_workers, cache_dir=cache_dir, start=False)
    try:
        ids = [svc.submit(spec) for spec in _specs(scan, unique=unique)]
        t0 = time.perf_counter()
        svc.start()
        assert svc.drain(timeout=600)
        elapsed = time.perf_counter() - t0
        latencies = []
        for job_id in ids:
            status = svc.status(job_id)
            assert status["state"] == "DONE", status
            latencies.append(status["finished_at"] - status["submitted_at"])
        deduped = svc.report()["counters"].get("service.jobs_deduped", 0)
        return elapsed, latencies, deduped
    finally:
        svc.close()


def bench_service(tmp_path):
    system = build_system_matrix(scaled_geometry(PIXELS))
    scan = simulate_scan(shepp_logan(PIXELS), system, seed=0)
    clear_system_cache()

    lines = [f"{N_JOBS} ICD jobs at {PIXELS}^2, 2 equits each", ""]
    lines.append(f"{'workers':>8} {'jobs/s':>8} {'p50':>8} {'p90':>8} {'p99':>8}")
    by_workers: dict[str, dict] = {}
    for n_workers in WORKER_COUNTS:
        elapsed, latencies, _ = _drain_batch(scan, n_workers=n_workers, unique=True)
        pct = _percentiles(latencies)
        by_workers[str(n_workers)] = {
            "throughput_jobs_per_s": round(N_JOBS / elapsed, 3),
            "drain_s": round(elapsed, 3),
            "latency": pct,
        }
        lines.append(
            f"{n_workers:>8} {N_JOBS / elapsed:>8.2f} {pct['p50_s']:>8.3f} "
            f"{pct['p90_s']:>8.3f} {pct['p99_s']:>8.3f}"
        )

    # Dedup: identical batch, cold cache then warm cache (persistent dir so
    # the second service life starts with nothing in memory).
    cache_dir = tmp_path / "cache"
    cold_s, _, cold_dedup = _drain_batch(
        scan, n_workers=1, unique=False, cache_dir=cache_dir
    )
    warm_s, warm_lat, warm_dedup = _drain_batch(
        scan, n_workers=1, unique=False, cache_dir=cache_dir
    )
    assert warm_dedup == N_JOBS, f"warm batch recomputed: {warm_dedup}/{N_JOBS} deduped"
    dedup = {
        "cold_drain_s": round(cold_s, 3),
        "warm_drain_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 1),
        "cold_batch_deduped": int(cold_dedup),
        "overhead_per_cached_job_ms": round(1e3 * warm_s / N_JOBS, 2),
    }
    lines.append("")
    lines.append(
        f"dedup: cold {cold_s:.2f}s -> warm {warm_s:.3f}s "
        f"({dedup['speedup']}x; {dedup['overhead_per_cached_job_ms']} ms/cached job)"
    )
    report("SERVICE — job throughput and latency", "\n".join(lines))

    emit_path = os.environ.get("REPRO_BENCH_JSON")
    if emit_path:
        doc = {
            "bench": "service",
            "pixels": PIXELS,
            "n_jobs": N_JOBS,
            "python": platform.python_version(),
            "workers": by_workers,
            "dedup": dedup,
        }
        with open(emit_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")

    # Guards: the warm (all-cached) drain must beat the cold one soundly,
    # and service overhead per cached job must stay small.
    assert cold_s / warm_s >= 3.0, (
        f"result cache no longer pays: warm drain {warm_s:.3f}s vs cold "
        f"{cold_s:.3f}s ({cold_s / warm_s:.1f}x < 3x)"
    )
    return by_workers


def test_service(benchmark, tmp_path):
    benchmark.pedantic(bench_service, args=(tmp_path,), rounds=1, iterations=1)

"""Chaos-campaign benchmark — fault-domain hardening as a measured artifact.

Runs ``N_CAMPAIGNS`` seeded campaigns from :mod:`repro.service.chaos`
(alternating thread/process worker models) through a real
:class:`ReconstructionService` + :class:`HttpGateway`, then reports:

* **correctness** — total invariant violations (always asserted zero:
  this benchmark *is* the PR-9 acceptance gate, CI's ``chaos`` job runs
  it with more campaigns);
* **cost of chaos** — wall-clock per campaign split by worker model.
  Fault recovery is not free (a SIGSTOPped worker costs one heartbeat
  timeout, a kill costs a respawn + checkpoint resume), so the per-model
  mean is the number to watch drift: a jump means recovery got slower,
  not that reconstruction did;
* **fault coverage** — how many jobs of each fault kind the seed range
  actually exercised, so a report with zero ``hang`` jobs is visibly
  weaker than one with five.

Emit mode: ``REPRO_BENCH_JSON=path.json`` writes the machine-readable
report (CI uploads it as the ``BENCH_9.json`` artifact).  CI-size knobs:
``REPRO_BENCH_CHAOS_CAMPAIGNS`` / ``_JOBS`` / ``_SEED``.
"""

from __future__ import annotations

import json
import os
import platform

from conftest import report

from repro.service.chaos import run_campaigns, summarize

#: Campaigns per benchmark run (campaign i uses seed SEED + i).
N_CAMPAIGNS = int(os.environ.get("REPRO_BENCH_CHAOS_CAMPAIGNS", "10"))
#: Jobs per campaign.
N_JOBS = int(os.environ.get("REPRO_BENCH_CHAOS_JOBS", "6"))
#: Base seed — shift to explore a different fault-mix neighbourhood.
SEED = int(os.environ.get("REPRO_BENCH_CHAOS_SEED", "0"))


def bench_chaos():
    results = run_campaigns(N_CAMPAIGNS, seed=SEED, n_jobs=N_JOBS)
    summary = summarize(results)

    by_model: dict[str, list[float]] = {}
    for r in results:
        by_model.setdefault(r.worker_model, []).append(r.duration_s)
    model_means = {
        model: round(sum(ds) / len(ds), 3) for model, ds in by_model.items()
    }

    lines = [
        f"{summary['campaigns']} campaigns, {summary['total_jobs']} jobs, "
        f"{summary['total_duration_s']:.1f}s total",
        "mean campaign wall-clock: "
        + "  ".join(f"{m} {s:.2f}s" for m, s in sorted(model_means.items())),
        "fault coverage: "
        + "  ".join(f"{k}={n}" for k, n in sorted(summary["kind_counts"].items())),
        f"violations: {len(summary['violations'])}",
    ]
    report(
        f"CHAOS — {N_CAMPAIGNS} seeded campaigns x {N_JOBS} jobs "
        f"(seeds {SEED}..{SEED + N_CAMPAIGNS - 1})",
        "\n".join(lines),
    )

    emit_path = os.environ.get("REPRO_BENCH_JSON")
    if emit_path:
        doc = {
            "bench": "chaos",
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
            "campaigns": N_CAMPAIGNS,
            "jobs_per_campaign": N_JOBS,
            "base_seed": SEED,
            "mean_campaign_s": model_means,
            "summary": summary,
        }
        with open(emit_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")

    # The invariants are the whole point: zero violations, every fault
    # kind's fingerprint verified inside run_campaign.  Hard gate, no
    # advisory mode — a violation is a correctness bug, not CI noise.
    assert summary["ok"], "\n".join(summary["violations"])
    return summary


def test_chaos(benchmark):
    benchmark.pedantic(bench_chaos, rounds=1, iterations=1)

"""What-if ablation: GPU-ICD on other device generations.

Not in the paper — a use the calibrated model enables: re-evaluate the
tuned GPU-ICD configuration on hypothetical devices (a Kepler-class
predecessor and a Pascal-class successor of the Titan X) and check that
the *tuning conclusions* (best SV side / chunk width) transfer while the
absolute time scales with the memory system, supporting the paper's claim
that the approach, not the specific chip, is what matters.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import report

from repro.core.gpu_icd import GPUICDParams
from repro.gpusim import TITAN_X, GPUKernelConfig, GPUTimingModel

#: A Kepler-class predecessor: fewer resident threads, slower L2/shared.
KEPLER_CLASS = replace(
    TITAN_X,
    name="Kepler-class (hypothetical GK110-like)",
    n_smm=15,
    cores_per_smm=192,
    clock_hz=875e6,
    dram_peak_bw=288e9,
    l2_bytes=1536 * 1024,
    l2_peak_bw=500e9,
    tex_peak_bw=600e9,
    shared_peak_bw=900e9,
)

#: A Pascal-class successor: more SMs, bigger faster L2, faster DRAM.
PASCAL_CLASS = replace(
    TITAN_X,
    name="Pascal-class (hypothetical GP102-like)",
    n_smm=28,
    clock_hz=1480e6,
    dram_peak_bw=480e9,
    l2_bytes=4 * 1024 * 1024,
    l2_peak_bw=1400e9,
    tex_peak_bw=1600e9,
    shared_peak_bw=2300e9,
)


def bench_whatif(ctx):
    cfg = GPUKernelConfig()
    lines = ["device                                   s/equit  best-side  best-chunk"]
    results = {}
    for device in (KEPLER_CLASS, TITAN_X, PASCAL_CLASS):
        model = GPUTimingModel(ctx.paper_geom, device=device)
        t = model.equit_time(GPUICDParams(), cfg, zero_skip_fraction=0.4)
        sides = {
            s: model.equit_time(GPUICDParams(sv_side=s), cfg, zero_skip_fraction=0.4)
            for s in (17, 25, 33, 41, 49)
        }
        widths = {
            w: model.equit_time(GPUICDParams(chunk_width=w), cfg, zero_skip_fraction=0.4)
            for w in (8, 16, 32, 64)
        }
        best_side = min(sides, key=sides.get)
        best_width = min(widths, key=widths.get)
        results[device.name] = (t, best_side, best_width)
        lines.append(f"{device.name:40s} {t:7.4f}  {best_side:9d}  {best_width:10d}")
    report("WHAT-IF — GPU-ICD across device generations (model ablation)", "\n".join(lines))

    t_kep, _, _ = results[KEPLER_CLASS.name]
    t_tx, side_tx, width_tx = results[TITAN_X.name]
    t_pas, _, _ = results[PASCAL_CLASS.name]
    assert t_kep > t_tx > t_pas  # newer memory systems are faster
    assert width_tx == 32
    # Tuning conclusions transfer: every device prefers warp-width chunks.
    assert all(w == 32 for _, _, w in results.values())
    return results


def test_whatif_devices(benchmark, ctx):
    benchmark.pedantic(bench_whatif, args=(ctx,), rounds=1, iterations=1)

"""Fig. 5 — convergence (RMSE in HU) versus wall time, PSV-ICD vs GPU-ICD.

Paper: "GPU-ICD achieves convergence much rapidly compared to PSV-ICD" —
at every wall-clock instant the GPU curve sits at or below the CPU curve,
despite GPU-ICD needing more equits, because its time per equit is 5.86x
smaller.
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.harness import run_fig5


def bench_fig5(ctx):
    result = run_fig5(ctx)
    lines = ["time(s)   PSV-RMSE   GPU-RMSE (interpolated to common times)"]
    psv_t = np.array([t for t, _ in result.psv_series])
    psv_r = np.array([r for _, r in result.psv_series])
    gpu_t = np.array([t for t, _ in result.gpu_series])
    gpu_r = np.array([r for _, r in result.gpu_series])
    # Sample where the action is: the transient occupies the first PSV
    # iterations, so use those timestamps (plus the tail) as the grid.
    grid_t = np.unique(np.concatenate([psv_t[:8], psv_t[-1:]]))
    for t in grid_t:
        lines.append(
            f"{t:7.3f}   {np.interp(t, psv_t, psv_r):8.2f}   {np.interp(t, gpu_t, gpu_r):8.2f}"
        )
    report("FIG 5 — Convergence of PSV-ICD (CPU) and GPU-ICD", "\n".join(lines))

    # GPU-ICD dominates through the transient: strictly lower RMSE at the
    # early common timestamps.
    early = grid_t[: len(grid_t) // 2]
    for t in early:
        assert np.interp(t, gpu_t, gpu_r) <= np.interp(t, psv_t, psv_r) + 1.0
    return result


def test_fig5(benchmark, ctx):
    benchmark.pedantic(bench_fig5, args=(ctx,), rounds=1, iterations=1)

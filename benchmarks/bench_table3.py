"""Table 3 — slowdown when each GPU-specific optimization is turned off.

Paper:

    Reading Sinogram as double            1.053x
    Placing Variables on Shared Memory    1.124x
    Exploiting Intra-SV Parallelism       6.251x
    Dynamic voxel distribution            1.064x
    Setting threshold for batch sizes     1.099x

Also prints the §5.3 bandwidth accounting (the paper reports an aggregate
1802 GB/s = 5.36x device-memory bandwidth across the cache levels).
"""

from __future__ import annotations

from conftest import report

from repro.core.gpu_icd import GPUICDParams
from repro.gpusim import GPUKernelConfig
from repro.harness import run_table3


def _bandwidth_summary(ctx) -> str:
    params = GPUICDParams()
    cfg = GPUKernelConfig()
    kc = ctx.gpu_model.mbir_kernel_cost(
        32, 33**2 * 0.6, params, cfg, skipped_per_sv=33**2 * 0.4
    )
    lines = [f"kernel bottleneck: {kc.bottleneck}"]
    for level, t in sorted(kc.times.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {level:9s} service time {t * 1e3:7.3f} ms")
    lines.append(f"  occupancy {kc.occupancy:.2f}, latency hiding {kc.hiding_factor:.2f}, "
                 f"SVB L2 hit {kc.l2_hit_rate:.2f}, tex hit {kc.tex_hit_rate:.2f}")
    bw = ctx.gpu_model.bandwidth_report(params, cfg)
    lines.append(
        f"achieved bandwidth: L2 {bw['l2_gbps']:.0f} GB/s (paper 472), "
        f"shared {bw['shared_gbps']:.0f} (456), tex {bw['tex_gbps']:.0f} (702), "
        f"dram {bw['dram_gbps']:.0f} (152)"
    )
    lines.append(
        f"aggregate {bw['total_gbps']:.0f} GB/s = {bw['ratio_to_dram_peak']:.2f}x "
        f"device-memory peak (paper: 1802 GB/s = 5.36x)"
    )
    return "\n".join(lines)


def bench_table3(ctx):
    result = run_table3(ctx)
    report(
        "TABLE 3 — Impact of GPU-specific optimizations (off => slowdown)",
        result.format()
        + "\npaper: 1.053 / 1.124 / 6.251 / 1.064 / 1.099\n\n"
        + _bandwidth_summary(ctx),
    )
    slow = {r["name"]: r["slowdown"] for r in result.rows}
    assert 1.02 < slow["Reading Sinogram as double"] < 1.35
    assert 1.05 < slow["Placing Variables on the Shared Memory"] < 1.35
    assert 4.0 < slow["Exploiting Intra-SV Parallelism"] < 9.0
    assert 1.0 < slow["Dynamic voxel distribution"] < 1.25
    assert 0.95 < slow["Setting threshold for batch sizes"] < 1.6
    # Intra-SV parallelism is by far the most important optimization.
    assert slow["Exploiting Intra-SV Parallelism"] == max(slow.values())
    return result


def test_table3(benchmark, ctx):
    benchmark.pedantic(bench_table3, args=(ctx,), rounds=1, iterations=1)

"""Fig. 7c — threads per threadblock (intra-voxel parallelism granularity).

Paper: 256 threads perform best.  "384 threads per threadblock result in
lower occupancy"; with 64 threads "the small threadcount per block results
in larger active threadblock count ... more SVBs being accessed
simultaneously, leading to L2 conflicts"; 512 threads cause "asymmetric
work distribution of the 720 views" and higher reduction cost.
"""

from __future__ import annotations

from conftest import report

from repro.harness import run_fig7c


def bench_fig7c(ctx):
    result = run_fig7c(ctx)
    occ = result.extra["occupancy"]
    body = result.format() + "\noccupancy: " + ", ".join(
        f"{v}:{occ[v]:.0%}" for v in result.values
    )
    report("FIG 7c — Threads per threadblock", body + "\npaper: 256 best")
    t = dict(zip(result.values, result.equit_times))
    assert t[256] <= min(t.values()) * 1.05  # 256 in the best region
    assert t[64] > 1.2 * t[256]  # L2 conflicts
    assert t[512] > 1.2 * t[256]  # view asymmetry
    assert occ[256] == 1.0
    assert occ[384] < 1.0  # the paper's occupancy dip
    return result


def test_fig7c(benchmark, ctx):
    benchmark.pedantic(bench_fig7c, args=(ctx,), rounds=1, iterations=1)

"""MULTIRES — hierarchical pyramid vs cold start; sharded groups vs monolith.

Two claims, measured at ``REPRO_BENCH_MULTIRES_PIXELS``² (default 256):

1. **Hierarchical beats cold.**  From a zero (cold) start, the
   coarse-to-fine pyramid reaches the 10 HU convergence target in strictly
   fewer finest-raster equits than full-resolution ICD — the coarse levels
   buy the fine level a warm start for a fraction of an equit of work
   (coarse equits are discounted by 1/factor² in ``effective`` terms).

2. **Sharding is exact (slices) / bounded (rows).**  A multi-slice volume
   submitted as a job group through a *live* ReconstructionService
   stitches bit-identically to per-slice monolithic solves, and row-mode
   block-Jacobi sharding stays within a pinned HU tolerance of the
   unsharded reference.

Emit mode: ``REPRO_BENCH_JSON=path.json`` writes the machine-readable
report (CI uploads it as the ``BENCH_10.json`` artifact).  Gate mode:
advisory by default (CI surfaces a warning); set
``REPRO_BENCH_MULTIRES_ASSERT=strict`` to hard-fail on any claim.

Wall-clock caveat: sharded makespan vs monolithic wall time only shows a
speedup with real parallelism — on the 1-CPU CI runner the group's value
is isolation/scheduling, not throughput, so times are reported but never
gated.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np
from conftest import report

from repro import (
    build_system_matrix,
    icd_reconstruct,
    rmse_hu,
    scaled_geometry,
    shepp_logan,
    simulate_scan,
)
from repro.core.volume import ellipsoid_volume, simulate_volume_scan
from repro.multires import multires_reconstruct, parse_levels
from repro.multires.shards import ShardCoordinator
from repro.service import ReconstructionService

#: Finest raster of the pyramid benchmark (the ISSUE pins 256).
PIXELS = int(os.environ.get("REPRO_BENCH_MULTIRES_PIXELS", "256"))
#: Slices in the sharded volume stage.
SLICES = int(os.environ.get("REPRO_BENCH_MULTIRES_SLICES", "3"))
#: "advisory" (default) or "strict" — strict asserts the claims.
ASSERT_MODE = os.environ.get("REPRO_BENCH_MULTIRES_ASSERT", "advisory")

#: Convergence target (HU RMSE vs a well-converged golden run).
TARGET_HU = 10.0
#: Row-mode block-Jacobi quality pin (HU RMSE vs the unsharded solve).
ROWS_TOLERANCE_HU = 8.0


def _equits_to(history, threshold):
    for record in history.records:
        if record.rmse is not None and record.rmse < threshold:
            return record.equits
    return None


def bench_multires():
    geom = scaled_geometry(PIXELS)
    system = build_system_matrix(geom)
    scan = simulate_scan(shepp_logan(PIXELS), system, dose=1e5, seed=1)
    golden = icd_reconstruct(
        scan, system, max_equits=30, seed=0, track_cost=False
    ).image

    # -- claim 1: pyramid vs cold start -------------------------------
    levels = parse_levels(None, geom)
    t0 = time.perf_counter()
    cold = icd_reconstruct(
        scan, system, max_equits=20, golden=golden, seed=7, init="zero",
        track_cost=False,
    )
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    hier = multires_reconstruct(
        scan, system, levels=list(levels), coarse_equits=3.0, max_equits=20,
        golden=golden, seed=7, init="zero", track_cost=False,
    )
    hier_s = time.perf_counter() - t0
    cold_equits = _equits_to(cold.history, TARGET_HU)
    hier_equits = _equits_to(hier.history, TARGET_HU)

    # -- claim 2: sharded groups through a live service ---------------
    vol = ellipsoid_volume(SLICES, PIXELS, seed=3)
    scans = simulate_volume_scan(vol, system, dose=8e4, seed=5)
    slice_params = {"max_equits": 2.0, "seed": 0, "track_cost": False}
    with ReconstructionService(n_workers=min(4, os.cpu_count() or 1)) as svc:
        coord = ShardCoordinator(svc)
        t0 = time.perf_counter()
        gid = coord.submit_volume(scans, params=dict(slice_params))
        stitched = coord.result(gid, timeout=3600).image
        slices_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        rid = coord.submit_sharded(
            scan, n_shards=2, halo=2, rounds=3, seed=0, params={}
        )
        rows_img = coord.result(rid, timeout=3600).image
        rows_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    refs = [icd_reconstruct(s, system, **slice_params) for s in scans]
    mono_s = time.perf_counter() - t0
    slices_max_abs = float(
        max(np.abs(stitched[k] - r.image).max() for k, r in enumerate(refs))
    )
    rows_ref = icd_reconstruct(
        scan, system, max_iterations=3, seed=0, track_cost=False
    )
    rows_err_hu = rmse_hu(rows_img, rows_ref.image)

    checks = {
        "hierarchical_converged": hier_equits is not None,
        "cold_converged": cold_equits is not None,
        "hierarchical_fewer_equits": (
            hier_equits is not None
            and cold_equits is not None
            and hier_equits < cold_equits
        ),
        "slices_bit_identical": slices_max_abs == 0.0,
        "rows_within_tolerance": rows_err_hu < ROWS_TOLERANCE_HU,
    }
    ok = all(checks.values())

    lines = [
        f"pyramid {' -> '.join(str(s) for s in levels)}  "
        f"(target {TARGET_HU:.0f} HU vs 30-equit golden)",
        f"  cold (zero init):   {cold_equits!s:>6} equits to target, "
        f"{cold_s:7.2f} s wall",
        f"  hierarchical:       {hier_equits!s:>6} equits to target, "
        f"{hier_s:7.2f} s wall "
        f"({hier.total_effective_equits:.2f} effective equits total)",
        f"sharded volume: {SLICES} slices of {PIXELS}^2 as a job group",
        f"  slices group:       {slices_s:7.2f} s makespan vs "
        f"{mono_s:7.2f} s monolithic, max |diff| {slices_max_abs:.1e}",
        f"  rows group (2x3):   {rows_s:7.2f} s, "
        f"{rows_err_hu:.2f} HU vs unsharded (pin < {ROWS_TOLERANCE_HU:.0f})",
        f"checks: {'all pass' if ok else 'FAILING: ' + ', '.join(k for k, v in checks.items() if not v)}",
    ]
    report(f"MULTIRES — pyramid + shard groups at {PIXELS}^2", "\n".join(lines))

    emit_path = os.environ.get("REPRO_BENCH_JSON")
    doc = {
        "bench": "multires",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "pixels": PIXELS,
        "slices": SLICES,
        "target_hu": TARGET_HU,
        "levels": list(levels),
        "cold": {"equits_to_target": cold_equits, "wall_s": round(cold_s, 3)},
        "hierarchical": {
            "equits_to_target": hier_equits,
            "wall_s": round(hier_s, 3),
            "total_effective_equits": round(hier.total_effective_equits, 3),
            "per_level": [
                {"size": lr.size, "factor": lr.factor,
                 "equits": round(lr.equits, 3),
                 "effective_equits": round(lr.effective_equits, 3)}
                for lr in hier.levels
            ],
        },
        "sharded": {
            "slices": {
                "makespan_s": round(slices_s, 3),
                "monolithic_s": round(mono_s, 3),
                "max_abs_diff": slices_max_abs,
            },
            "rows": {
                "n_shards": 2, "halo": 2, "rounds": 3,
                "wall_s": round(rows_s, 3),
                "rmse_hu_vs_unsharded": round(rows_err_hu, 3),
                "tolerance_hu": ROWS_TOLERANCE_HU,
            },
        },
        "checks": checks,
        "ok": ok,
    }
    if emit_path:
        with open(emit_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")

    if ASSERT_MODE == "strict":
        failing = [k for k, v in checks.items() if not v]
        assert ok, f"multires benchmark claims failed: {failing}"
    return doc


def test_multires(benchmark):
    benchmark.pedantic(bench_multires, rounds=1, iterations=1)

"""Worker-model benchmark — thread vs process execution, and the TTL soak.

Two phases (the PR-8 acceptance harness):

* **scaling** — ``N_JOBS`` fresh CPU-bound ICD jobs (distinct seeds, no
  dedup) at ``PIXELS``^2 run on ``n_workers=2``, once under
  ``worker_model="thread"`` and once under ``worker_model="process"``.
  Thread workers serialise the NumPy-light ICD sweeps on the GIL, so the
  job-mix makespan barely improves with a second worker; process workers
  run the same jobs in subprocesses (forked, system matrix inherited
  copy-on-write) and scale with cores.  The report records the
  process/thread throughput ratio next to ``cpu_count`` — the ratio is
  only meaningful with >= 2 cores.
* **soak** — a ``job_ttl_s``-bounded HTTP gateway under sustained
  closed-loop load, with a sampler thread watching
  ``len(service.jobs)``: the registry must stay bounded (peak below
  2x client concurrency) instead of growing by one entry per submission,
  with zero server-side 5xx and the evictions visible in the counters.

Assertion modes (mirrors ``bench_backends``): the scaling check is skipped
on single-core machines (the GIL is not the bottleneck being removed when
there is nothing to scale onto), advisory by default on multi-core (a
``::warning`` annotation, not a failure — shared CI runners are noisy),
and a hard gate with ``REPRO_BENCH_SERVICE_ASSERT=strict``.  The soak
bound always asserts — it measures leak behaviour, not wall-clock speed.

Emit mode: ``REPRO_BENCH_JSON=path.json`` writes the machine-readable
report (CI uploads it as the ``BENCH_8.json`` perf-trajectory artifact).
CI-size knobs: ``REPRO_BENCH_WORKERS_PIXELS`` / ``_JOBS`` / ``_EQUITS``
scale the CPU-bound phase; ``REPRO_SOAK_JOBS`` the soak.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time

from conftest import report

from repro.ct import build_system_matrix, scaled_geometry, shepp_logan, simulate_scan
from repro.io import save_scan
from repro.service import HttpGateway, JobSpec, ReconstructionService
from repro.service.loadgen import default_spec_factory, run_load
from repro.service.runner import clear_system_cache, system_for

#: Image side of the CPU-bound scaling mix — big enough that per-job
#: compute dwarfs process spawn + result-file overhead.
PIXELS = int(os.environ.get("REPRO_BENCH_WORKERS_PIXELS", "128"))
#: Jobs per model in the scaling mix (distinct seeds: all fresh compute).
N_JOBS = int(os.environ.get("REPRO_BENCH_WORKERS_JOBS", "4"))
#: Per-job equits — keeps one job at a few iterations of real sweep work.
EQUITS = float(os.environ.get("REPRO_BENCH_WORKERS_EQUITS", "0.5"))
#: Worker pool size under test (the acceptance point of the scaling claim).
N_WORKERS = 2
#: Process >= SCALING_TOLERANCE x thread throughput on a multi-core box.
SCALING_TOLERANCE = 1.3

#: Soak sizing: closed-loop clients and total jobs at 32^2.  Per-job work
#: (SOAK_EQUITS) is deliberately heavy relative to SOAK_TTL_S: the
#: terminal tail lingering inside one TTL window must stay well under the
#: in-flight population, so a peak past 2x concurrency means a leak, not
#: fast jobs outpacing the reaper.
SOAK_PIXELS = 32
SOAK_JOBS = int(os.environ.get("REPRO_SOAK_JOBS", "24"))
SOAK_CONCURRENCY = 4
SOAK_EQUITS = 3.0
SOAK_TTL_S = 0.15


def _scaling_phase() -> dict:
    system = build_system_matrix(scaled_geometry(PIXELS))
    scan = simulate_scan(shepp_logan(PIXELS), system, seed=0)
    del system
    clear_system_cache()

    out: dict[str, dict] = {}
    for model in ("thread", "process"):
        # Warm the process-wide system cache *before* the clock starts:
        # both models then pay zero build time inside the measured window
        # (forked workers inherit the matrix copy-on-write).
        system_for(scan.geometry)
        with ReconstructionService(
            n_workers=N_WORKERS,
            worker_model=model,
            checkpoint_every=1000,  # measure sweeps, not checkpoint I/O
            start=False,
        ) as svc:
            ids = [
                svc.submit(
                    JobSpec(
                        driver="icd",
                        scan=scan,
                        params={
                            "max_equits": EQUITS,
                            "seed": 100 + i,
                            "track_cost": False,
                        },
                    )
                )
                for i in range(N_JOBS)
            ]
            start = time.perf_counter()
            svc.start()
            for job_id in ids:
                svc.result(job_id, timeout=600)
            makespan = time.perf_counter() - start
        out[model] = {
            "makespan_s": round(makespan, 4),
            "throughput_jobs_per_s": round(N_JOBS / makespan, 4),
        }
    out["process_vs_thread"] = round(
        out["process"]["throughput_jobs_per_s"]
        / out["thread"]["throughput_jobs_per_s"],
        3,
    )
    return out


def _soak_phase(tmp_path) -> dict:
    system = build_system_matrix(scaled_geometry(SOAK_PIXELS))
    scan = simulate_scan(shepp_logan(SOAK_PIXELS), system, seed=0)
    save_scan(tmp_path / "soak-scan.npz", scan)
    clear_system_cache()

    service = ReconstructionService(
        n_workers=N_WORKERS, job_ttl_s=SOAK_TTL_S, start=True
    )
    samples: list[int] = []
    stop = threading.Event()

    def sample_registry():
        while not stop.wait(0.02):
            samples.append(len(service.jobs))

    sampler = threading.Thread(target=sample_registry, daemon=True)
    with HttpGateway(service, scan_root=tmp_path, own_service=True) as gw:
        sampler.start()
        load = run_load(
            gw.url,
            mode="closed",
            n_jobs=SOAK_JOBS,
            concurrency=SOAK_CONCURRENCY,
            spec_factory=default_spec_factory(
                driver="icd",
                scan="soak-scan.npz",
                params={"max_equits": SOAK_EQUITS, "track_cost": False},
                priorities=(0,),
                distinct_seeds=SOAK_JOBS,  # every job is fresh compute
            ),
            fetch_results=False,
        )
        # Let the reaper clear the tail before reading the counters.
        deadline = time.monotonic() + 10
        while len(service.jobs) > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        stop.set()
        sampler.join()
        counters = service.report()["counters"]
    return {
        "load": load.to_dict(),
        "job_ttl_s": SOAK_TTL_S,
        "concurrency": SOAK_CONCURRENCY,
        "registry_peak": max(samples) if samples else 0,
        "registry_final": len(samples) and samples[-1],
        "jobs_evicted": counters.get("service.jobs_evicted", 0),
        "tombstones": counters.get("service.tombstones", 0),
    }


def bench_service_workers(tmp_path):
    cpu_count = os.cpu_count() or 1
    scaling = _scaling_phase()
    soak = _soak_phase(tmp_path)

    ratio = scaling["process_vs_thread"]
    lines = [
        f"{'model':10s} {'makespan':>10s} {'jobs/s':>8s}",
        *(
            f"{m:10s} {scaling[m]['makespan_s']:9.2f}s "
            f"{scaling[m]['throughput_jobs_per_s']:8.3f}"
            for m in ("thread", "process")
        ),
        f"process/thread throughput ratio: {ratio:.2f}x "
        f"(cpu_count={cpu_count})",
        "",
        f"soak: {soak['load']['completed']}/{SOAK_JOBS} jobs, "
        f"registry peak {soak['registry_peak']} "
        f"(bound {2 * SOAK_CONCURRENCY}), "
        f"{soak['jobs_evicted']:.0f} evictions, "
        f"{soak['load']['server_errors_5xx']} 5xx",
    ]
    report(
        f"SERVICE WORKERS — thread vs process at {PIXELS}^2, "
        f"TTL soak at {SOAK_PIXELS}^2",
        "\n".join(lines),
    )

    emit_path = os.environ.get("REPRO_BENCH_JSON")
    if emit_path:
        doc = {
            "bench": "service_workers",
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "pixels": PIXELS,
            "n_jobs": N_JOBS,
            "n_workers": N_WORKERS,
            "equits": EQUITS,
            "scaling": scaling,
            "soak": soak,
        }
        with open(emit_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")

    # -- guards ----------------------------------------------------------
    # The leak bound and 5xx cleanliness always assert.
    assert soak["load"]["server_errors_5xx"] == 0, soak["load"]
    assert soak["load"]["completed"] == SOAK_JOBS, soak["load"]
    assert soak["jobs_evicted"] >= SOAK_JOBS - 1, soak
    assert soak["registry_peak"] < 2 * SOAK_CONCURRENCY, (
        f"registry grew past the TTL bound: peak {soak['registry_peak']} "
        f">= {2 * SOAK_CONCURRENCY} under {SOAK_CONCURRENCY}-way load"
    )

    # The scaling claim needs a second core to scale onto.
    strict = os.environ.get("REPRO_BENCH_SERVICE_ASSERT") == "strict"
    if cpu_count < 2:
        report(
            "SERVICE WORKERS — perf smoke",
            f"single-core machine: process >= {SCALING_TOLERANCE}x thread "
            f"check skipped (measured {ratio:.2f}x)",
        )
    else:
        verdict = (
            f"process at {ratio:.2f}x thread throughput "
            f"({N_JOBS} jobs at {PIXELS}^2, n_workers={N_WORKERS}, "
            f"tolerance {SCALING_TOLERANCE}x)"
        )
        if ratio >= SCALING_TOLERANCE:
            report("SERVICE WORKERS — perf smoke", f"OK: {verdict}")
        elif strict:
            raise AssertionError(f"process model failed to scale: {verdict}")
        else:
            report("SERVICE WORKERS — perf smoke", f"BELOW TOLERANCE: {verdict}")
            print(f"::warning title=worker-model perf smoke::{verdict}")
    return {"scaling": scaling, "soak": soak}


def test_service_workers(benchmark, tmp_path):
    benchmark.pedantic(bench_service_workers, args=(tmp_path,), rounds=1, iterations=1)

"""Ensemble statistics — the distributional view behind Table 1.

The paper aggregates 3200 slices into geometric means and standard
deviations; this bench runs the same protocol over the (scaled) synthetic
ensemble and reports distributions, including the paper's observation that
GPU-ICD's run-to-run variation is far below PSV-ICD's ("We suspect that
GPU-ICD is being limited by the span, lowering the deviation").
"""

from __future__ import annotations

from conftest import report

from repro.harness.suite import run_suite


def bench_suite(ctx):
    stats = run_suite(ctx)
    report(
        "SUITE STATISTICS — distributional Table 1 over the ensemble",
        stats.format()
        + "\npaper (3200 slices): PSV-ICD std 0.535 s vs GPU-ICD std 0.083 s",
    )
    # Orderings hold on every case.
    assert (stats.times["gpu"] < stats.times["psv"]).all()
    assert (stats.times["psv"] < stats.times["seq"]).all()
    # Relative spread: GPU's coefficient of variation does not exceed PSV's
    # (the paper's low-deviation observation).
    cv_gpu = stats.times["gpu"].std() / stats.times["gpu"].mean()
    cv_psv = stats.times["psv"].std() / stats.times["psv"].mean()
    assert cv_gpu <= cv_psv * 1.3
    return stats


def test_suite_stats(benchmark, ctx):
    benchmark.pedantic(bench_suite, args=(ctx,), rounds=1, iterations=1)

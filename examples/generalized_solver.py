"""§6 generalization: GPU-ICD's structure on a generic least-squares problem.

Builds a sparse weighted-least-squares instance (a stand-in for the
synchrotron/SVM/geophysics problems §6 lists), derives the three-level
structure statistically — supervariables by *maximising* the column
correlation ``sum_k |A_ki||A_kj|``, concurrent color classes by
*minimising* it — and compares sequential coordinate descent against the
grouped (checkerboarded, stale-wave) solver.  Finishes with footnote 2's
claim: on a linear system, the same scheme is parallel Gauss-Seidel.

Run:  python examples/generalized_solver.py
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.solvers import (
    cd_solve,
    cluster_supervariables,
    color_groups,
    colored_gauss_seidel,
    coupling_colors,
    gauss_seidel,
    grouped_cd_solve,
    jacobi,
    random_sparse_problem,
)


def wls_demo() -> None:
    print("== generic WLS: min ||y - Ax||^2_Lambda  (banded, CT-like A) ==")
    problem, x_true = random_sparse_problem(
        600, 120, density=0.04, banded=True, noise=0.01, seed=7
    )
    direct = problem.solve_direct()

    groups = cluster_supervariables(problem, group_size=8)
    colors = color_groups(problem, groups)
    print(f"   {problem.n} unknowns -> {len(groups)} supervariables "
          f"-> {len(colors)} concurrent color classes (generalized checkerboard)")

    seq = cd_solve(problem, max_sweeps=200, tol=1e-14)
    par = grouped_cd_solve(
        problem, groups=groups, colors=colors, stale_width=4, max_sweeps=200, tol=1e-14
    )
    print(f"   sequential CD : {seq.iterations:3d} sweeps, "
          f"final cost {seq.final_cost:.6e}")
    print(f"   grouped CD    : {par.iterations:3d} sweeps, "
          f"final cost {par.final_cost:.6e} (4 coords/group in flight)")
    print(f"   both match the normal-equations solution: "
          f"{np.max(np.abs(seq.x - direct)):.2e} / {np.max(np.abs(par.x - direct)):.2e}")
    print(f"   recovery of generating x: corr = "
          f"{np.corrcoef(par.x, x_true)[0, 1]:.4f}")


def gauss_seidel_demo() -> None:
    print("\n== footnote 2: on a linear system this is parallel Gauss-Seidel ==")
    n = 32
    l1 = sp.diags([[-1.0] * (n - 1), [2.3] * n, [-1.0] * (n - 1)], [-1, 0, 1])
    M = (sp.kron(sp.identity(n), l1) + sp.kron(l1, sp.identity(n))).tocsr()
    b = np.ones(M.shape[0])
    colors = coupling_colors(M)
    print(f"   2-D Laplacian ({M.shape[0]} unknowns): "
          f"{len(colors)} colors (red-black)")
    for name, solver in [
        ("sequential Gauss-Seidel", gauss_seidel),
        ("colored (parallel) GS  ", colored_gauss_seidel),
        ("Jacobi (fully stale)   ", jacobi),
    ]:
        res = solver(M, b, max_iters=4000, tol=1e-10)
        print(f"   {name}: {res.iterations:4d} iterations "
              f"(converged={res.converged})")




def svm_demo() -> None:
    print("\n== §6 application: dual coordinate descent for a linear SVM ==")
    from repro.solvers import make_classification, svm_dual_cd

    problem = make_classification(150, 30, density=0.25, margin=1.0, seed=9)
    seq = svm_dual_cd(problem, max_sweeps=200, tol=1e-12)
    par = svm_dual_cd(problem, max_sweeps=200, tol=1e-12, group_size=10, stale_width=4)
    print(f"   sequential dual CD: obj {seq.objectives[-1]:.6f}, "
          f"{seq.iterations} sweeps, accuracy {problem.accuracy(seq.w):.0%}")
    print(f"   grouped dual CD   : obj {par.objectives[-1]:.6f}, "
          f"{par.iterations} sweeps, accuracy {problem.accuracy(par.w):.0%} "
          f"(10-dual supervariables, 4 in flight)")


def robust_demo() -> None:
    print("\n== §6 application: robust modeling with erratic data (Claerbout/Muir) ==")
    import scipy.sparse as sp
    from repro.solvers import irls_solve

    rng = np.random.default_rng(4)
    A = sp.csc_matrix(rng.standard_normal((200, 12)))
    x_true = rng.standard_normal(12)
    y = A @ x_true + 0.01 * rng.standard_normal(200)
    bad = rng.choice(200, size=15, replace=False)
    y[bad] += rng.uniform(5, 25, size=15) * rng.choice([-1, 1], size=15)

    res = irls_solve(A, y, delta=0.1)
    ls = np.linalg.lstsq(A.toarray(), y, rcond=None)[0]
    print(f"   15 gross outliers in 200 measurements")
    print(f"   least squares max error : {np.max(np.abs(ls - x_true)):.3f}")
    print(f"   Huber-IRLS max error    : {np.max(np.abs(res.x - x_true)):.4f} "
          f"({res.outer_iterations} reweighting rounds)")
    flagged = np.nonzero(res.outlier_mask())[0]
    print(f"   outliers identified: {len(set(flagged) & set(bad))}/{len(bad)} "
          f"(plus {len(set(flagged) - set(bad))} borderline)")


if __name__ == "__main__":
    wls_demo()
    gauss_seidel_demo()
    svm_demo()
    robust_demo()

"""Quickstart: reconstruct a phantom with all three ICD drivers.

Builds a scaled parallel-beam problem, simulates a noisy scan of the
Shepp-Logan phantom, reconstructs it with FBP (the direct-method baseline),
sequential ICD, PSV-ICD and GPU-ICD, and reports image quality plus the
modeled full-size execution times that Table 1 is built from.

Run:  python examples/quickstart.py [n_pixels]
"""

from __future__ import annotations

import sys
import time

from repro import (
    CPUTimingModel,
    GPUICDParams,
    GPUTimingModel,
    build_system_matrix,
    fbp_reconstruct,
    gpu_icd_reconstruct,
    icd_reconstruct,
    paper_geometry,
    psv_icd_reconstruct,
    rmse_hu,
    scaled_geometry,
    shepp_logan,
    simulate_scan,
)
from repro.harness import scaled_gpu_params, scaled_psv_side


def main(n_pixels: int = 64) -> None:
    print(f"== geometry: {n_pixels}^2 image (paper ratios of views/channels) ==")
    geom = scaled_geometry(n_pixels)
    print(f"   views={geom.n_views} channels={geom.n_channels}")

    t0 = time.perf_counter()
    system = build_system_matrix(geom)
    print(f"   system matrix: {system.nnz:,} entries "
          f"({time.perf_counter() - t0:.1f} s to build)")

    # Low dose: the regime where MBIR's statistical weighting visibly beats
    # FBP (the paper's image-quality motivation).
    phantom = shepp_logan(n_pixels)
    scan = simulate_scan(phantom, system, dose=5e2, seed=0)

    print("\n== reconstructions ==")
    fbp = fbp_reconstruct(scan.sinogram, geom)
    print(f"   FBP             RMSE vs phantom: {rmse_hu(fbp, phantom):7.1f} HU")

    golden = icd_reconstruct(scan, system, max_equits=30, seed=0, track_cost=False).image
    print(f"   MBIR (golden)   RMSE vs phantom: {rmse_hu(golden, phantom):7.1f} HU")

    common = dict(golden=golden, stop_rmse=10.0, max_equits=25, seed=1, track_cost=False)
    psv = psv_icd_reconstruct(scan, system, sv_side=scaled_psv_side(n_pixels), **common)
    gpu = gpu_icd_reconstruct(scan, system, params=scaled_gpu_params(n_pixels), **common)

    print("\n== convergence to 10 HU of the golden image ==")
    print(f"   PSV-ICD: {psv.history.converged_equits or float('nan'):6.2f} equits")
    print(f"   GPU-ICD: {gpu.history.converged_equits or float('nan'):6.2f} equits")

    print("\n== modeled full-size (512^2, Titan X vs 16-core Xeon) times ==")
    gpu_model = GPUTimingModel(paper_geometry())
    cpu_model = CPUTimingModel(paper_geometry())
    eq_psv = psv.history.converged_equits or psv.history.equits
    eq_gpu = gpu.history.converged_equits or gpu.history.equits
    t_psv = cpu_model.reconstruction_time(eq_psv, 13)
    t_gpu = gpu_model.reconstruction_time(eq_gpu, GPUICDParams())
    print(f"   PSV-ICD: {t_psv:6.3f} s   (paper: 1.801 s)")
    print(f"   GPU-ICD: {t_gpu:6.3f} s   (paper: 0.407 s)")
    print(f"   GPU speedup over PSV: {t_psv / t_gpu:.2f}x (paper: 4.43x)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)

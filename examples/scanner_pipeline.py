"""End-to-end scanner pipeline: fan-beam counts to MBIR image.

The paper's dataset came off an Imatron C-300 — a fan-beam machine whose
data is rebinned to parallel geometry before reconstruction (§5.1).  This
example walks the full deployment path the library supports:

    fan-beam acquisition  ->  rebinning to parallel  ->  photon-count
    statistics + dead-channel handling  ->  GPU-ICD reconstruction

Run:  python examples/scanner_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GPUICDParams,
    QGGMRFPrior,
    baggage_phantom,
    build_system_matrix,
    fbp_reconstruct,
    gpu_icd_reconstruct,
    rmse_hu,
    scaled_geometry,
)
from repro.ct.phantoms import MU_WATER
from repro.ct import (
    FanBeamGeometry,
    ScanData,
    fan_sinogram,
    preprocess_counts,
    rebin_to_parallel,
)
from repro.utils import resolve_rng


def main(n_pixels: int = 48) -> None:
    rng = resolve_rng(7)
    parallel = scaled_geometry(n_pixels)
    fan = FanBeamGeometry(
        n_pixels=n_pixels,
        n_views=2 * parallel.n_views,
        n_channels=2 * parallel.n_channels,
        source_radius=2.5 * n_pixels,
    )
    print(f"== scanner: fan-beam, {fan.n_views} source positions, "
          f"{fan.n_channels} channels, fan angle {np.degrees(fan.fan_angle):.1f} deg ==")

    obj = baggage_phantom(n_pixels, n_objects=6, seed=21)

    # 1. Acquire: ideal fan line integrals -> Poisson photon counts.
    dose = 1.5e3  # low dose: the regime where MBIR pays off
    p_fan = fan_sinogram(obj, fan, oversample=2)
    counts = rng.poisson(dose * np.exp(-p_fan)).astype(float)
    dead = [fan.n_channels // 3, fan.n_channels // 3 + 1]
    counts[:, dead] = 0.0
    print(f"   dose {dose:.0e}, dead channels {dead}")

    # 2. Counts -> log-domain fan sinogram + statistical weights
    #    (dead channels zero-weighted).
    fan_scan_like = preprocess_counts(
        counts, dose,
        # preprocess_counts validates against a geometry's sinogram shape;
        # the fan sinogram has its own shape, so wrap it in a matching
        # parallel description of the same array size.
        type(parallel)(n_pixels=n_pixels, n_views=fan.n_views,
                       n_channels=fan.n_channels),
        handle_bad="interpolate",
    )

    # 3. Rebin both the measurements and the weights to parallel geometry.
    y_par = rebin_to_parallel(fan_scan_like.sinogram, fan, parallel)
    w_par = rebin_to_parallel(fan_scan_like.weights, fan, parallel)
    w_par = np.clip(w_par, 0.0, None)
    scan = ScanData(geometry=parallel, sinogram=y_par, weights=w_par)
    print(f"   rebinned to {parallel.n_views} parallel views x "
          f"{parallel.n_channels} channels; "
          f"{np.mean(w_par < 0.05):.1%} of weights down-weighted (dead-channel shadow)")

    # 4. Reconstruct.
    system = build_system_matrix(parallel)
    params = GPUICDParams(sv_side=8, threadblocks_per_sv=4, batch_size=8)
    prior = QGGMRFPrior(sigma=16.0 * MU_WATER, q=1.2, T=0.15)  # edge-preserving
    res = gpu_icd_reconstruct(scan, system, prior=prior, params=params,
                              max_equits=10, seed=0, track_cost=False)
    fbp = fbp_reconstruct(scan.sinogram, parallel)
    print(f"\n   FBP  from rebinned data: {rmse_hu(fbp, obj):7.1f} HU vs truth")
    print(f"   MBIR from full pipeline: {rmse_hu(res.image, obj):7.1f} HU vs truth")
    print(f"   ({res.history.equits:.1f} equits, {res.trace.n_kernels} kernels)")


if __name__ == "__main__":
    main()

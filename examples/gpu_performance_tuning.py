"""GPU performance exploration with the Titan X model (§5.4 in miniature).

The paper closes by noting that "various parameters can greatly impact the
performance of GPU-ICD" and proposes (as future work) a model that selects
input-specific parameter values.  This example *is* such a model session:
it sweeps the four tuning parameters of Figs. 7a-7d plus the chunk width of
Fig. 6 over the full-size geometry, prints the trade-offs, and reports the
best configuration it finds.

Run:  python examples/gpu_performance_tuning.py
"""

from __future__ import annotations

import itertools

from repro import GPUICDParams, GPUKernelConfig, GPUTimingModel, TITAN_X, occupancy, paper_geometry

ZSF = 0.4  # typical zero-skip fraction of a security-scan slice


def occupancy_table() -> None:
    print("== occupancy (the §4.2 story) ==")
    print("   build                    regs  shared/blk  occupancy  limiter")
    for label, cfg in [
        ("natural (44 regs)", GPUKernelConfig(shared_spill=False)),
        ("spilled-to-shared (32)", GPUKernelConfig(shared_spill=True)),
    ]:
        occ = occupancy(
            TITAN_X, 256, cfg.registers_per_thread, cfg.shared_bytes_per_block(256)
        )
        print(
            f"   {label:24s} {cfg.registers_per_thread:4d}  "
            f"{cfg.shared_bytes_per_block(256):9d}  {occ.percent:8.1f}%  {occ.limiter}"
        )


def sweep(model: GPUTimingModel, name: str, values, make_params) -> None:
    print(f"\n== sweep: {name} ==")
    cfg = GPUKernelConfig()
    best = None
    for v in values:
        t = model.equit_time(make_params(v), cfg, zero_skip_fraction=ZSF)
        marker = ""
        if best is None or t < best[1]:
            best = (v, t)
            marker = "  <-- best so far"
        print(f"   {name}={v:<5}  {t * 1e3:7.2f} ms/equit{marker}")
    print(f"   best {name}: {best[0]}")


def joint_search(model: GPUTimingModel) -> None:
    print("\n== small joint search (SV side x TB/SV x chunk width) ==")
    cfg = GPUKernelConfig()
    best = None
    for side, tb, cw in itertools.product((25, 33, 41), (24, 32, 40), (32, 64)):
        p = GPUICDParams(sv_side=side, threadblocks_per_sv=tb, chunk_width=cw)
        t = model.equit_time(p, cfg, zero_skip_fraction=ZSF)
        if best is None or t < best[1]:
            best = (p, t)
    p, t = best
    print(f"   best: side={p.sv_side} tb/SV={p.threadblocks_per_sv} "
          f"chunk={p.chunk_width} -> {t * 1e3:.2f} ms/equit")
    print("   paper's tuned point: side=33 tb/SV=40 chunk=32 (0.07 s/equit / 5.9 equits)")


def main() -> None:
    model = GPUTimingModel(paper_geometry())
    occupancy_table()
    sweep(model, "sv_side", (9, 17, 25, 33, 41, 49),
          lambda v: GPUICDParams(sv_side=v))
    sweep(model, "threadblocks_per_sv", (1, 4, 8, 16, 32, 40, 64),
          lambda v: GPUICDParams(threadblocks_per_sv=v))
    sweep(model, "threads_per_block", (64, 128, 192, 256, 384, 512),
          lambda v: GPUICDParams(threads_per_block=v))
    sweep(model, "batch_size", (2, 4, 8, 16, 32, 64, 128),
          lambda v: GPUICDParams(batch_size=v))
    sweep(model, "chunk_width", (8, 16, 32, 48, 64, 128),
          lambda v: GPUICDParams(chunk_width=v))
    joint_search(model)


if __name__ == "__main__":
    main()

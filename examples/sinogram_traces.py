"""Visualise the sinusoidal sinogram traces and SuperVoxel bands (Figs. 1b/2).

Renders, as ASCII art, (a) the sinusoidal trajectories of two voxels
through the sinogram — the access pattern that defeats caching and
motivates SuperVoxels — and (b) one SuperVoxel's per-view band with its
rectangular (padded) SVB outline, the structure of Fig. 2 / Fig. 4b.  Also
quantifies the coalescing gap between the naive and chunked layouts on a
real SuperVoxel using the warp-transaction model.

Run:  python examples/sinogram_traces.py
"""

from __future__ import annotations

import numpy as np

from repro import SuperVoxelGrid, build_system_matrix, scaled_geometry
from repro.gpusim import warp_traffic
from repro.layout import chunked_svb_trace, naive_svb_trace


def render(canvas: np.ndarray, charset: str = " .:#@") -> str:
    levels = np.clip(canvas, 0, len(charset) - 1).astype(int)
    return "\n".join("".join(charset[v] for v in row) for row in levels)


def trace_plot(system, geometry) -> None:
    print("== Fig 1b: sinusoidal traces of two voxels through the sinogram ==")
    print(f"   (rows = {geometry.n_views} views downsampled, cols = "
          f"{geometry.n_channels} channels)\n")
    canvas = np.zeros((geometry.n_views, geometry.n_channels))
    n = geometry.n_pixels
    for level, (r, c) in [(2, (n // 4, n // 4)), (4, (n // 2 + 3, 3 * n // 4))]:
        j = geometry.voxel_index(r, c)
        views, chans, _ = system.column_views(j)
        canvas[views, chans] = level
    step = max(1, geometry.n_views // 24)
    print(render(canvas[::step, :: max(1, geometry.n_channels // 72)]))


def band_plot(system, geometry) -> None:
    grid = SuperVoxelGrid(system, sv_side=geometry.n_pixels // 4)
    sv = grid.svs[1]
    print(f"\n== Fig 2/4b: SuperVoxel band (SV {sv.grid_pos}, "
          f"{sv.n_voxels} voxels, SVB width W={sv.width}) ==\n")
    canvas = np.zeros((geometry.n_views, geometry.n_channels))
    for v in range(geometry.n_views):
        lo = sv.band_lo[v]
        canvas[v, lo : lo + sv.band_width[v]] = 2  # true band
        canvas[v, lo + sv.band_width[v] : min(lo + sv.width, geometry.n_channels)] = 1  # padding
    step = max(1, geometry.n_views // 24)
    print(render(canvas[::step, :: max(1, geometry.n_channels // 72)], " -#"))
    rect = sv.svb_cells
    used = int(sv.band_width.sum())
    print(f"\n   rectangular SVB: {rect:,} cells, true band {used:,} cells "
          f"({used / rect:.0%} used; the rest is the Fig-4b zero padding)")


def coalescing_numbers(system, geometry) -> None:
    grid = SuperVoxelGrid(system, sv_side=geometry.n_pixels // 4)
    sv = grid.svs[1]
    member = sv.n_voxels // 2
    useful = sv.member_footprint(member).size * 4
    print("\n== coalescing on this SuperVoxel (warp-transaction model) ==")
    print("   layout          moved bytes  useful bytes  sectors/warp-load")
    for name, trace in [
        ("naive (Fig 4a)", naive_svb_trace(sv, member)),
        ("chunked w=32  ", chunked_svb_trace(sv, member, chunk_width=32)),
    ]:
        n_tx, moved = warp_traffic(trace, element_bytes=4)
        loads = max(trace.size / 32, 1)
        print(f"   {name}  {moved:11,}  {useful:12,}  {n_tx / loads:17.2f}")


def main() -> None:
    geometry = scaled_geometry(48)
    system = build_system_matrix(geometry)
    trace_plot(system, geometry)
    band_plot(system, geometry)
    coalescing_numbers(system, geometry)


if __name__ == "__main__":
    main()

"""Multi-slice volume reconstruction with auto-tuned GPU-ICD.

The paper's 3200-slice suite is really volumes reconstructed slice by
slice.  This example builds a small ellipsoid volume, estimates the
zero-skip fraction from an FBP preview, lets the model-driven auto-tuner
pick input-specific GPU parameters (the paper's proposed future work,
implemented in :mod:`repro.tuning`), reconstructs the whole stack, and
reports per-slice convergence plus the modeled full-size wall time.

Run:  python examples/medical_multislice.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GPUICDParams,
    GPUTimingModel,
    build_system_matrix,
    paper_geometry,
    rmse_hu,
    scaled_geometry,
)
from repro.core.volume import ellipsoid_volume, reconstruct_volume, simulate_volume_scan
from repro.tuning import AutoTuner, estimate_zero_skip_fraction


def main(n_slices: int = 4, n_pixels: int = 48) -> None:
    geom = scaled_geometry(n_pixels)
    system = build_system_matrix(geom)
    vol = ellipsoid_volume(n_slices, n_pixels, seed=3)
    scans = simulate_volume_scan(vol, system, dose=8e4, seed=5)
    print(f"== volume: {n_slices} slices of {n_pixels}^2 ==")

    zsf = float(np.mean([estimate_zero_skip_fraction(s) for s in scans]))
    print(f"   estimated zero-skip fraction (FBP preview): {zsf:.0%}")

    model = GPUTimingModel(paper_geometry())
    tuner = AutoTuner(model, zero_skip_fraction=zsf)
    tuned = tuner.coordinate_descent()
    p = tuned.best_params
    print(f"   auto-tuned full-size parameters: side={p.sv_side} tb/SV="
          f"{p.threadblocks_per_sv} threads={p.threads_per_block} "
          f"batch={p.batch_size} chunk={p.chunk_width} "
          f"-> {tuned.best_time * 1e3:.1f} ms/equit "
          f"({tuner.evaluations} model evals)")

    # Reconstruct with scaled equivalents of the tuned parameters.
    scaled = GPUICDParams(
        sv_side=max(4, round(p.sv_side * n_pixels / 512)),
        threadblocks_per_sv=4,
        batch_size=8,
        chunk_width=p.chunk_width,
    )
    res = reconstruct_volume(
        scans, system, method="gpu", params=scaled, max_equits=8, seed=0,
        track_cost=False,
    )

    print("\n   slice  equits  RMSE-vs-truth(HU)")
    for k, r in enumerate(res.slice_results):
        print(f"   {k:5d}  {r.history.equits:6.2f}  {rmse_hu(res.volume[k], vol[k]):10.1f}")

    total_time = model.reconstruction_time(
        res.total_equits, p, zero_skip_fraction=zsf
    )
    print(f"\n   total modeled wall time for the volume at full size: "
          f"{total_time:.3f} s ({res.total_equits:.1f} equits across slices)")


if __name__ == "__main__":
    main()

"""Multi-slice volume reconstruction with auto-tuned GPU-ICD.

The paper's 3200-slice suite is really volumes reconstructed slice by
slice.  This example builds a small ellipsoid volume, estimates the
zero-skip fraction from an FBP preview, lets the model-driven auto-tuner
pick input-specific GPU parameters (the paper's proposed future work,
implemented in :mod:`repro.tuning`), reconstructs the whole stack, and
reports per-slice convergence plus the modeled full-size wall time.

Two optional stages exercise the hierarchical/sharded subsystem
(:mod:`repro.multires`):

* ``--levels SPEC`` reconstructs each slice coarse-to-fine through the
  multi-resolution pyramid instead of at full resolution from a cold
  start (e.g. ``--levels 24,48``);
* ``--shards N`` re-runs the stack as a *job group* on an in-process
  reconstruction service with ``N`` workers — one child job per slice,
  stitched back bit-identically.

Invalid pyramid or shard specs are usage errors (exit code 2).

Run:  python examples/medical_multislice.py [--slices 4] [--pixels 48]
                                            [--levels 24,48] [--shards 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    GPUICDParams,
    GPUTimingModel,
    build_system_matrix,
    paper_geometry,
    rmse_hu,
    scaled_geometry,
)
from repro.core.volume import ellipsoid_volume, reconstruct_volume, simulate_volume_scan
from repro.tuning import AutoTuner, estimate_zero_skip_fraction


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="multi-slice reconstruction with auto-tuned GPU-ICD"
    )
    parser.add_argument("--slices", type=int, default=4, metavar="N",
                        help="slices in the test volume (default 4)")
    parser.add_argument("--pixels", type=int, default=48, metavar="N",
                        help="slice side in pixels (default 48)")
    parser.add_argument("--levels", metavar="SPEC", default=None,
                        help="reconstruct each slice coarse-to-fine through "
                        "this pyramid (comma list of ascending sizes ending "
                        "at --pixels, e.g. '24,48')")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="also run the stack as a sharded job group on "
                        "an in-process reconstruction service with N "
                        "workers (one child job per slice)")
    args = parser.parse_args(argv)
    if args.slices < 1:
        parser.error(f"--slices must be >= 1, got {args.slices}")
    if args.pixels < 4:
        parser.error(f"--pixels must be >= 4, got {args.pixels}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")

    n_slices, n_pixels = args.slices, args.pixels
    geom = scaled_geometry(n_pixels)

    levels = None
    if args.levels is not None:
        from repro.multires import parse_levels

        try:
            levels = parse_levels(args.levels, geom)
        except ValueError as exc:
            parser.error(f"invalid --levels spec {args.levels!r}: {exc}")

    system = build_system_matrix(geom)
    vol = ellipsoid_volume(n_slices, n_pixels, seed=3)
    scans = simulate_volume_scan(vol, system, dose=8e4, seed=5)
    print(f"== volume: {n_slices} slices of {n_pixels}^2 ==")

    zsf = float(np.mean([estimate_zero_skip_fraction(s) for s in scans]))
    print(f"   estimated zero-skip fraction (FBP preview): {zsf:.0%}")

    model = GPUTimingModel(paper_geometry())
    tuner = AutoTuner(model, zero_skip_fraction=zsf)
    tuned = tuner.coordinate_descent()
    p = tuned.best_params
    print(f"   auto-tuned full-size parameters: side={p.sv_side} tb/SV="
          f"{p.threadblocks_per_sv} threads={p.threads_per_block} "
          f"batch={p.batch_size} chunk={p.chunk_width} "
          f"-> {tuned.best_time * 1e3:.1f} ms/equit "
          f"({tuner.evaluations} model evals)")

    if levels is not None:
        # Hierarchical path: each slice runs the coarse-to-fine pyramid —
        # the full-resolution stage starts from a prolonged coarse solve
        # instead of an FBP seed.
        from repro.multires import multires_reconstruct

        print(f"   pyramid: {' -> '.join(str(s) for s in levels)}")
        results = [
            multires_reconstruct(
                scan, system, levels=list(levels), max_equits=8, seed=0,
                track_cost=False,
            )
            for scan in scans
        ]
        volume = np.stack([r.image for r in results])
        print("\n   slice  fine-equits  effective-equits  RMSE-vs-truth(HU)")
        for k, r in enumerate(results):
            print(f"   {k:5d}  {r.levels[-1].equits:11.2f}  "
                  f"{r.total_effective_equits:16.2f}  "
                  f"{rmse_hu(volume[k], vol[k]):17.1f}")
        total_equits = sum(r.total_effective_equits for r in results)
    else:
        # Reconstruct with scaled equivalents of the tuned parameters.
        scaled = GPUICDParams(
            sv_side=max(4, round(p.sv_side * n_pixels / 512)),
            threadblocks_per_sv=4,
            batch_size=8,
            chunk_width=p.chunk_width,
        )
        res = reconstruct_volume(
            scans, system, method="gpu", params=scaled, max_equits=8, seed=0,
            track_cost=False,
        )
        volume = res.volume
        print("\n   slice  equits  RMSE-vs-truth(HU)")
        for k, r in enumerate(res.slice_results):
            print(f"   {k:5d}  {r.history.equits:6.2f}  "
                  f"{rmse_hu(res.volume[k], vol[k]):10.1f}")
        total_equits = res.total_equits

    total_time = model.reconstruction_time(
        total_equits, p, zero_skip_fraction=zsf
    )
    print(f"\n   total modeled wall time for the volume at full size: "
          f"{total_time:.3f} s ({total_equits:.1f} equits across slices)")

    if args.shards is not None:
        # Sharded path: the same stack as a job group — one ordinary
        # service job per slice, stitched back by the coordinator.
        from repro.multires import ShardCoordinator
        from repro.service.service import ReconstructionService

        print(f"\n== sharded job group ({args.shards} workers) ==")
        service = ReconstructionService(n_workers=args.shards)
        try:
            coord = ShardCoordinator(service)
            gid = coord.submit_volume(
                scans, driver="icd",
                params={"max_equits": 4, "seed": 0, "track_cost": False},
            )
            group = coord.result(gid, timeout=600)
            status = coord.status(gid)
            print(f"   group {gid}: {status['state']}, "
                  f"{status['group']['children_done']} children done")
            print(f"   stitched stack shape: {group.image.shape}, "
                  f"mean RMSE vs truth: "
                  f"{np.mean([rmse_hu(group.image[k], vol[k]) for k in range(n_slices)]):.1f} HU")
        finally:
            service.close()


if __name__ == "__main__":
    main()

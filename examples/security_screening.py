"""Security screening: sparse-view baggage reconstruction.

The paper's benchmark data comes from a DHS explosive-detection program,
and §7 stresses that ICD methods (unlike ordered-subset approaches) remain
compatible with "the sparse view tomography methods that are crucial in
many scientific and NDE applications".  This example reconstructs a
synthetic baggage slice from a *sparse* set of views, where FBP streaks
badly and MBIR shines, and reports zero-skipping statistics (baggage scenes
are mostly air — the reason zero-skipping and dynamic voxel distribution
matter).

Run:  python examples/security_screening.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GPUICDParams,
    QGGMRFPrior,
    baggage_phantom,
    build_system_matrix,
    fbp_reconstruct,
    gpu_icd_reconstruct,
    rmse_hu,
    simulate_scan,
)
from repro.ct import ParallelBeamGeometry
from repro.ct.phantoms import MU_WATER


def main(n_pixels: int = 64, n_views: int = 24) -> None:
    print(f"== sparse-view scan: {n_views} views of a {n_pixels}^2 baggage slice ==")
    geom = ParallelBeamGeometry(
        n_pixels=n_pixels, n_views=n_views, n_channels=2 * n_pixels
    )
    system = build_system_matrix(geom)
    bag = baggage_phantom(n_pixels, n_objects=7, seed=11)
    air_fraction = float(np.mean(bag == 0))
    print(f"   scene air fraction: {air_fraction:.0%}")
    scan = simulate_scan(bag, system, dose=5e4, seed=3)

    fbp = fbp_reconstruct(scan.sinogram, geom)
    print(f"\n   FBP   RMSE vs truth: {rmse_hu(fbp, bag):7.1f} HU "
          f"(streak artifacts from {n_views} views)")

    # Sparse views want a more edge-preserving prior (smaller T): the data
    # is too thin to resolve edges, so the prior must not blur them.
    prior = QGGMRFPrior(sigma=4.0 * MU_WATER, q=1.2, T=0.3)
    params = GPUICDParams(sv_side=8, threadblocks_per_sv=4, batch_size=8)
    res = gpu_icd_reconstruct(
        scan, system, prior=prior, params=params, max_equits=15, seed=0,
        track_cost=False,
    )
    print(f"   MBIR  RMSE vs truth: {rmse_hu(res.image, bag):7.1f} HU")

    # Zero-skipping in action: rerun from an empty (air) initialisation —
    # iteration 1 bootstraps, then air regions are skipped.
    res_zero = gpu_icd_reconstruct(
        scan, system, prior=prior, params=params, max_equits=6, seed=0,
        track_cost=False, init="zero",
    )
    updates = sum(k.updates for k in res_zero.trace.kernels)
    skipped = sum(s.skipped for k in res_zero.trace.kernels for s in k.sv_stats)
    print("\n== zero-skipping (zero-initialised run) ==")
    print(f"   voxel updates performed: {updates:,}")
    print(f"   visits skipped (voxel + neighborhood all zero): {skipped:,} "
          f"({skipped / max(updates + skipped, 1):.0%} of visits)")
    print(f"   kernels launched: {res_zero.trace.n_kernels}, "
          f"suppressed under-filled launches: {res_zero.trace.skipped_launches}")

    # Detection-oriented check: dense objects must stand out more clearly
    # in the MBIR image than in the streaky FBP one.
    thresh = 2.0 * MU_WATER
    truth_mask = bag > thresh
    if truth_mask.any():
        mbir_hit = float(np.mean(res.image[truth_mask] > thresh))
        fbp_hit = float(np.mean(fbp[truth_mask] > thresh))
        fbp_false = float(np.mean(fbp[~truth_mask] > thresh))
        mbir_false = float(np.mean(res.image[~truth_mask] > thresh))
        print("\n== dense-object recovery (voxels above 2x water) ==")
        print(f"   FBP:  hit {fbp_hit:.0%}  false-alarm {fbp_false:.1%}")
        print(f"   MBIR: hit {mbir_hit:.0%}  false-alarm {mbir_false:.1%}")


if __name__ == "__main__":
    main()
